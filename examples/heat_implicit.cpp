// Implicit heat equation mini-app: time-stepped CG inside a real
// application loop.
//
// du/dt = alpha * Laplacian(u) on a 1-D rod, backward-Euler discretized:
//   (I + dt*alpha*A) u^{t+1} = u^t
// where A is the [−1, 2, −1] Laplacian.  Each step solves an SPD system
// with distributed CG over the matrix-free CSHIFT stencil — the HPF
// structured-grid idiom — and the total heat is tracked with the SUM
// intrinsic (it must decay monotonically toward the boundary temperature).
//
//   ./heat_implicit --n 4096 --steps 20 --dt 0.1 --np 8

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/hpf/shift.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
namespace sv = hpfcg::solvers;

int main(int argc, char** argv) {
  hpfcg::util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 4096, "rod cells"));
  const int steps = static_cast<int>(cli.get_int("steps", 20, "time steps"));
  const double dt = cli.get_double("dt", 0.1, "time step");
  const double alpha = cli.get_double("alpha", 1.0, "diffusivity");
  const int np = static_cast<int>(cli.get_int("np", 8, "simulated processors"));
  if (cli.help_requested()) {
    std::cout << cli.help_text("heat_implicit");
    return EXIT_SUCCESS;
  }
  cli.finish();

  std::cout << "Implicit heat equation: " << n << " cells, " << steps
            << " steps of dt=" << dt << ", NP=" << np
            << " (matrix-free CSHIFT stencil)\n";

  hpfcg::msg::Runtime machine(np);
  hpfcg::util::Table table("time-stepping log",
                           {"step", "CG iters", "total heat", "peak temp"});
  hpfcg::util::Timer wall;

  machine.run([&](hpfcg::msg::Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    DistributedVector<double> u(proc, dist), rhs(proc, dist);

    // Initial condition: a hot spot in the middle of a cold rod.
    u.set_from([n](std::size_t g) {
      const double d =
          static_cast<double>(g) - static_cast<double>(n) / 2.0;
      return std::exp(-d * d / (0.001 * static_cast<double>(n * n)));
    });

    // Backward-Euler operator: q = (I + dt*alpha*A) p via the stencil.
    const double c = dt * alpha;
    const sv::DistOp<double> op = [&, c](const DistributedVector<double>& p,
                                         DistributedVector<double>& q) {
      hpfcg::hpf::laplace1d_stencil(p, q);  // q = A p
      hpfcg::hpf::scale(c, q);              // q = c A p
      hpfcg::hpf::axpy(1.0, p, q);          // q = p + c A p
    };

    for (int step = 1; step <= steps; ++step) {
      hpfcg::hpf::assign(u, rhs);
      const auto res =
          sv::cg_dist<double>(op, rhs, u, {.max_iterations = 2000,
                                           .rel_tolerance = 1e-10});
      const double heat = hpfcg::hpf::sum(u);
      const double peak = hpfcg::hpf::maxval(u);
      if (proc.rank() == 0) {
        table.add_row({std::to_string(step), std::to_string(res.iterations),
                       hpfcg::util::fmt(heat, 6), hpfcg::util::fmt(peak, 4)});
      }
      if (!res.converged && proc.rank() == 0) {
        std::cout << "step " << step << " did not converge!\n";
      }
    }
  });

  table.print(std::cout);
  std::cout << "\nwall " << hpfcg::util::fmt(wall.seconds(), 3)
            << " s; total machine traffic "
            << hpfcg::util::fmt_count(machine.total_stats().bytes_sent)
            << " bytes ("
            << hpfcg::util::fmt_count(machine.total_stats().messages_sent)
            << " messages — stencil CG moves only boundary cells and "
               "DOT merges)\n"
            << "Peak temperature decays and heat leaks through the Dirichlet "
               "ends,\nas physics demands.\n";
  return EXIT_SUCCESS;
}
