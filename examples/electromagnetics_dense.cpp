// Computational-electromagnetics scenario: dense SPD moment-method system
// (the paper's introduction: "applications such as computational
// electromagnetics give rise to a matrix that is effectively dense").
//
// Compares the two dense partitionings of Section 4 end-to-end under CG:
//   (BLOCK, *) row-wise   — all-to-all broadcast of p (Figure 3),
//   (*, BLOCK) column-wise with the SUM-merge workaround (Figure 4),
//   (*, BLOCK) column-wise with the faithful serialized semantics,
// and also CG against the dense direct solvers (Cholesky / Gaussian) to
// show the crossover the paper's introduction describes.
//
//   ./electromagnetics_dense --n 192 --np 4

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "hpfcg/hpf/dense_matrix.hpp"
#include "hpfcg/hpf/matvec_dense.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/solvers/dense_direct.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"
#include "hpfcg/util/timer.hpp"

int main(int argc, char** argv) {
  using hpfcg::hpf::Distribution;
  using hpfcg::hpf::DistributedVector;
  namespace sv = hpfcg::solvers;

  hpfcg::util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(
      cli.get_int("n", 192, "dense system size"));
  const int np = static_cast<int>(cli.get_int("np", 4, "simulated processors"));
  const double range = cli.get_double("range", 8.0, "kernel decay range");
  if (cli.help_requested()) {
    std::cout << cli.help_text("electromagnetics_dense");
    return EXIT_SUCCESS;
  }
  cli.finish();

  const auto entry = [range](std::size_t i, std::size_t j) {
    return hpfcg::sparse::em_dense_entry(i, j, range);
  };
  const auto b_full = hpfcg::sparse::random_rhs(n, 7);
  std::cout << "Dense EM surrogate system, n=" << n << ", NP=" << np << "\n";

  // Direct ground truth + timing.
  std::vector<double> dense(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) dense[i * n + j] = entry(i, j);
  }
  hpfcg::util::Timer t_chol;
  const auto x_direct = sv::cholesky_solve(dense, b_full);
  const double chol_ms = t_chol.millis();

  hpfcg::util::Table table(
      "dense CG: partitioning scenarios (Figures 3 & 4)",
      {"variant", "iterations", "max err vs direct", "wall[ms]",
       "modeled[ms]", "msgs", "wait[ms]"});

  enum class Variant { kRowwise, kColwiseSum, kColwiseSerial };
  const auto run_variant = [&](Variant v, const char* name) {
    hpfcg::msg::Runtime machine(np);
    sv::SolveResult result;
    double max_err = 0.0;
    hpfcg::util::Timer t;
    machine.run([&](hpfcg::msg::Process& proc) {
      auto dist = std::make_shared<const Distribution>(
          Distribution::block(n, proc.nprocs()));
      DistributedVector<double> b(proc, dist), x(proc, dist);
      b.from_global(b_full);

      sv::DistOp<double> op;
      // Build the matrix strip in the layout the variant needs.
      std::shared_ptr<hpfcg::hpf::DenseRowBlockMatrix<double>> row_mat;
      std::shared_ptr<hpfcg::hpf::DenseColBlockMatrix<double>> col_mat;
      if (v == Variant::kRowwise) {
        row_mat =
            std::make_shared<hpfcg::hpf::DenseRowBlockMatrix<double>>(proc,
                                                                      dist);
        row_mat->set_from(entry);
        op = [row_mat](const DistributedVector<double>& p,
                       DistributedVector<double>& q) {
          hpfcg::hpf::matvec_rowwise(*row_mat, p, q);
        };
      } else {
        col_mat =
            std::make_shared<hpfcg::hpf::DenseColBlockMatrix<double>>(proc,
                                                                      dist);
        col_mat->set_from(entry);
        if (v == Variant::kColwiseSum) {
          op = [col_mat](const DistributedVector<double>& p,
                         DistributedVector<double>& q) {
            hpfcg::hpf::matvec_colwise_sum(*col_mat, p, q);
          };
        } else {
          op = [col_mat](const DistributedVector<double>& p,
                         DistributedVector<double>& q) {
            hpfcg::hpf::matvec_colwise_serial(*col_mat, p, q);
          };
        }
      }

      const auto res =
          sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-10});
      const auto full = x.to_global();
      double err = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        err = std::max(err, std::abs(full[i] - x_direct[i]));
      }
      if (proc.rank() == 0) {
        result = res;
        max_err = err;
      }
    });
    double wait = 0.0;
    for (int r = 0; r < np; ++r) {
      wait = std::max(wait, machine.stats(r).modeled_wait_seconds);
    }
    table.add_row({name, std::to_string(result.iterations),
                   hpfcg::util::fmt(max_err, 3),
                   hpfcg::util::fmt(t.millis(), 4),
                   hpfcg::util::fmt(machine.modeled_makespan() * 1e3, 4),
                   hpfcg::util::fmt_count(machine.total_stats().messages_sent),
                   hpfcg::util::fmt(wait * 1e3, 4)});
  };

  run_variant(Variant::kRowwise, "(BLOCK,*) row-wise");
  run_variant(Variant::kColwiseSum, "(*,BLOCK) col-wise + SUM merge");
  run_variant(Variant::kColwiseSerial, "(*,BLOCK) col-wise serialized");
  table.print(std::cout);

  std::cout << "\ndirect Cholesky: " << hpfcg::util::fmt(chol_ms, 4)
            << " ms, ~" << hpfcg::util::fmt(sv::cholesky_flops(n) / 1e6, 3)
            << " Mflop (CG per iteration: "
            << hpfcg::util::fmt(sv::cg_flops(n, n * n, 1) / 1e6, 3)
            << " Mflop)\n"
            << "The serialized column-wise variant books the dependency\n"
            << "stalls as wait time — the Scenario 2 pathology of Section 4.\n";
  return EXIT_SUCCESS;
}
