// Machine explorer: how interconnect topology and start-up latency move
// the balance of the Figure 2 CG solver.
//
// The paper's cost analysis is parameterized by the machine
// (t_startup, t_comm, topology); this driver sweeps those parameters over
// the same CG solve so you can watch the broadcast/merge terms take over
// as latency grows — the regime where the paper's distribution choices
// matter most.  Also accepts the paper's distribution directives as text:
//
//   ./machine_explorer --side 32 --np 8 --dist "CYCLIC(4)"

#include <cstdlib>
#include <iostream>
#include <memory>

#include "hpfcg/hpf/directives.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::CostParams;
using hpfcg::msg::Topology;
namespace sv = hpfcg::solvers;

int main(int argc, char** argv) {
  hpfcg::util::Cli cli(argc, argv);
  const auto side =
      static_cast<std::size_t>(cli.get_int("side", 32, "grid side"));
  const int np = static_cast<int>(cli.get_int("np", 8, "simulated processors"));
  const std::string dist_spec =
      cli.get("dist", "BLOCK", "vector distribution (BLOCK, CYCLIC, ...)");
  if (cli.help_requested()) {
    std::cout << cli.help_text("machine_explorer");
    return EXIT_SUCCESS;
  }
  cli.finish();

  const auto a = hpfcg::sparse::laplacian_2d(side, side);
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 99);
  std::cout << "CG on " << n << "-point Poisson, NP=" << np
            << ", vectors DISTRIBUTE(" << dist_spec << ")\n";

  // The row distribution must be contiguous for the CSR kernels; vector
  // distribution follows the CLI spec (only contiguous specs make sense
  // here, but the parser accepts any legal HPF format — CYCLIC falls back
  // to BLOCK for the matrix alignment and is reported).
  auto parsed = hpfcg::hpf::parse_distribution_spec(dist_spec, n, np);
  const bool contiguous = parsed.contiguous();
  if (!contiguous) {
    std::cout << "note: " << dist_spec
              << " is not contiguous; the CSR row alignment requires "
                 "contiguity, so vectors use BLOCK for the solve.\n";
  }

  hpfcg::util::Table table(
      "modeled CG cost across machines (same algorithm, same data)",
      {"topology", "t_startup[us]", "iters", "modeled[ms]", "comm[ms]",
       "compute[ms]"});

  for (const auto topo : {Topology::kHypercube, Topology::kRing,
                          Topology::kMesh2D, Topology::kFullyConnected}) {
    for (const double ts_us : {5.0, 50.0, 500.0}) {
      CostParams params;
      params.t_startup = ts_us * 1e-6;
      hpfcg::msg::Runtime machine(np, params, topo);
      sv::SolveResult result;
      machine.run([&](hpfcg::msg::Process& proc) {
        auto dist = std::make_shared<const Distribution>(
            Distribution::block(n, proc.nprocs()));
        auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
        DistributedVector<double> b(proc, dist), x(proc, dist);
        b.from_global(b_full);
        const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                          DistributedVector<double>& q) {
          mat.matvec(p, q);
        };
        const auto res =
            sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-8});
        if (proc.rank() == 0) result = res;
      });
      double comm = 0.0, comp = 0.0;
      for (int r = 0; r < np; ++r) {
        comm = std::max(comm, machine.stats(r).modeled_comm_seconds);
        comp = std::max(comp, machine.stats(r).modeled_compute_seconds);
      }
      table.add_row({hpfcg::msg::topology_name(topo),
                     hpfcg::util::fmt(ts_us, 4),
                     std::to_string(result.iterations),
                     hpfcg::util::fmt(machine.modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt(comm * 1e3, 4),
                     hpfcg::util::fmt(comp * 1e3, 4)});
    }
  }
  table.print(std::cout);

  std::cout << "\nThe iterate sequence is identical on every machine (the\n"
               "algorithm is deterministic); only the modeled cost moves.\n"
               "At t_startup=500us the solve is pure latency — the regime\n"
               "where the paper's log-tree merges and atom distributions\n"
               "earn their keep.\n";
  return EXIT_SUCCESS;
}
