// Irregular-grid scenario (Section 5.2.2): "a very irregular grid model in
// which some grid points may have many neighbours, while others have very
// few" — and the REDISTRIBUTE ... USING partitioner extension that fixes
// the resulting load imbalance.
//
// Builds a power-law SPD matrix, solves it with CG under each partitioner,
// and prints the per-processor nonzero loads plus modeled times.
//
//   ./irregular_partitioning --n 2000 --np 8

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "hpfcg/ext/sparse_descriptor.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"

int main(int argc, char** argv) {
  using hpfcg::ext::Partitioner;
  using hpfcg::ext::SparseMatrixCsr;
  using hpfcg::hpf::DistributedVector;
  namespace sv = hpfcg::solvers;

  hpfcg::util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(
      cli.get_int("n", 1500, "matrix dimension"));
  const int np = static_cast<int>(cli.get_int("np", 8, "simulated processors"));
  const auto hubs = static_cast<std::size_t>(
      cli.get_int("hubs", 6, "number of high-degree hub rows"));
  const auto hub_degree = static_cast<std::size_t>(
      cli.get_int("hub-degree", 300, "neighbours per hub"));
  if (cli.help_requested()) {
    std::cout << cli.help_text("irregular_partitioning");
    return EXIT_SUCCESS;
  }
  cli.finish();

  const auto a = hpfcg::sparse::powerlaw_spd(n, 3, hubs, hub_degree, 2026);
  const auto b_full = hpfcg::sparse::random_rhs(n, 11);
  std::cout << "Irregular power-law matrix: n=" << n << ", nnz=" << a.nnz()
            << ", " << hubs << " hubs of degree ~" << hub_degree << "\n";

  hpfcg::util::Table table(
      "REDISTRIBUTE smA USING <partitioner> (Section 5.2.2)",
      {"partitioner", "max nnz/proc", "avg nnz/proc", "imbalance",
       "CG iters", "modeled[ms]"});

  for (const auto which :
       {Partitioner::kUniformAtomBlock, Partitioner::kBalancedGreedy,
        Partitioner::kBalancedOptimal}) {
    hpfcg::msg::Runtime machine(np);
    sv::SolveResult result;
    std::size_t max_load = 0;
    machine.run([&](hpfcg::msg::Process& proc) {
      // !HPF$ SPARSE_MATRIX (CSR) :: smA(row, col, a)
      SparseMatrixCsr<double> sm(proc, a);
      // !EXT$ REDISTRIBUTE smA USING <which>
      sm.redistribute_using(which);

      auto b = sm.make_vector();
      auto x = sm.make_vector();
      b.from_global(b_full);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        sm.dist().matvec(p, q);
      };
      const auto res =
          sv::cg_dist<double>(op, b, x, {.max_iterations = 2000,
                                         .rel_tolerance = 1e-8});
      if (proc.rank() == 0) {
        result = res;
        max_load = 0;
        for (int r = 0; r < proc.nprocs(); ++r) {
          max_load =
              std::max(max_load, sm.dist().nnz_dist().local_count(r));
        }
      }
    });
    const double avg =
        static_cast<double>(a.nnz()) / static_cast<double>(np);
    table.add_row({hpfcg::ext::partitioner_name(which),
                   hpfcg::util::fmt_count(max_load),
                   hpfcg::util::fmt(avg, 4),
                   hpfcg::util::fmt(static_cast<double>(max_load) / avg, 3),
                   std::to_string(result.iterations),
                   hpfcg::util::fmt(machine.modeled_makespan() * 1e3, 4)});
  }

  table.print(std::cout);
  std::cout << "\nimbalance = max/avg nonzeros per processor; the matvec\n"
               "critical path scales with the heaviest processor, so the\n"
               "balanced partitioners cut the modeled time accordingly.\n";
  return EXIT_SUCCESS;
}
