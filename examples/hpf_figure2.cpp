// Pedagogical example: the paper's Figure 2 HPF program, transcribed
// directive-for-directive into the hpf-cg API, with the original HPF lines
// quoted alongside the C++ that lowers them.
//
//   ./hpf_figure2 --side 24 --np 4 --niter 200

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/hpf/processors.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"

int main(int argc, char** argv) {
  using hpfcg::hpf::Distribution;
  using hpfcg::hpf::DistributedVector;

  hpfcg::util::Cli cli(argc, argv);
  const auto side =
      static_cast<std::size_t>(cli.get_int("side", 24, "grid side"));
  const int np = static_cast<int>(cli.get_int("np", 4, "simulated processors"));
  const auto niter =
      static_cast<std::size_t>(cli.get_int("niter", 500, "max iterations"));
  if (cli.help_requested()) {
    std::cout << cli.help_text("hpf_figure2");
    return EXIT_SUCCESS;
  }
  cli.finish();

  const auto a = hpfcg::sparse::laplacian_2d(side, side);
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 1995);

  hpfcg::msg::Runtime machine(np);
  machine.run([&](hpfcg::msg::Process& proc) {
    // !HPF$ PROCESSORS :: PROCS(NP)
    hpfcg::hpf::ProcessorArrangement PROCS(proc, "PROCS");

    // REAL, dimension(1:n) :: x, r, p, q
    // !HPF$ DISTRIBUTE p(BLOCK)
    auto p_dist = std::make_shared<const Distribution>(
        Distribution::block(n, PROCS.size()));
    DistributedVector<double> p(proc, p_dist);
    // !HPF$ ALIGN (:) WITH p(:) :: q, r, x, b
    auto q = DistributedVector<double>::aligned_like(p);
    auto r = DistributedVector<double>::aligned_like(p);
    auto x = DistributedVector<double>::aligned_like(p);
    auto b = DistributedVector<double>::aligned_like(p);

    // REAL a(nz); INTEGER col(nz); INTEGER row(n+1)
    // !HPF$ DISTRIBUTE row(BLOCK((n+NP-1)/NP)); ALIGN a(:) WITH col(:)
    // (row-aligned nnz distribution: the trio travels with the rows)
    auto smA = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, p_dist);

    // (usual initialisation of variables)
    b.from_global(b_full);
    hpfcg::hpf::fill(x, 0.0);          // x = 0
    hpfcg::hpf::assign(b, r);          // r = b
    hpfcg::hpf::assign(r, p);          // p = r
    smA.matvec(p, q);                  // q = A p
    double rho = hpfcg::hpf::dot_product(r, r);
    double alpha = rho / hpfcg::hpf::dot_product(p, q);
    hpfcg::hpf::axpy(alpha, p, x);     // x = x + alpha p
    hpfcg::hpf::axpy(-alpha, q, r);    // r = r - alpha q
    const double bnorm = std::sqrt(hpfcg::hpf::dot_product(b, b));
    // DOT_PRODUCT(r,r) for the updated r: one merge serves both the stop
    // criterion and the next iteration's rho.  Transcribed literally,
    // Figure 2 merges (r,r) twice per iteration — once at the loop top for
    // beta and once in the stop test — a redundant third DOT_PRODUCT the
    // compiler was expected to CSE away; here we do it by hand.
    double rho_new = hpfcg::hpf::dot_product(r, r);

    std::size_t iterations = 1;
    // DO k = 2, Niter
    for (std::size_t k = 2; k <= niter; ++k) {
      const double rho0 = rho;                      // rho0 = rho
      rho = rho_new;                                // rho = DOT_PRODUCT(r,r)
      const double beta = rho / rho0;               // beta = rho / rho0
      hpfcg::hpf::aypx(beta, r, p);                 // p = beta * p + r
      smA.matvec(p, q);                             // FORALL sparse matvec
      alpha = rho / hpfcg::hpf::dot_product(p, q);  // alpha
      hpfcg::hpf::axpy(alpha, p, x);                // x = x + alpha p
      hpfcg::hpf::axpy(-alpha, q, r);               // r = r - alpha q
      iterations = k;
      rho_new = hpfcg::hpf::dot_product(r, r);
      // IF ( stop_criterion ) EXIT
      if (std::sqrt(rho_new) <= 1e-10 * bnorm) break;
    }

    // rho_new already holds DOT_PRODUCT(r,r) for the final residual —
    // every rank has it (the merge is collective); rank 0 narrates.
    const double final_rel = std::sqrt(rho_new) / bnorm;
    if (proc.rank() == 0) {
      std::cout << "Figure 2 CG: n=" << n << ", NP=" << PROCS.size()
                << ", iterations=" << iterations << ", final |r|/|b|="
                << final_rel << "\n";
    }
  });

  const auto total = machine.total_stats();
  std::cout << "machine: " << hpfcg::util::fmt_count(total.messages_sent)
            << " messages, " << hpfcg::util::fmt_count(total.bytes_sent)
            << " bytes, modeled makespan "
            << machine.modeled_makespan() * 1e3 << " ms\n";
  return EXIT_SUCCESS;
}
