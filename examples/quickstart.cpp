// Quickstart: solve a sparse SPD system with distributed Conjugate Gradient.
//
// This is the one-page tour of hpf-cg:
//   1. build a machine of NP simulated processors (msg::Runtime),
//   2. distribute the vectors BLOCK-wise and the CSR matrix row-aligned
//      (the paper's Figure 2 layout),
//   3. run distributed CG and compare with the serial reference.
//
//   ./quickstart --n 4096 --np 4 --tol 1e-10

#include <cstdlib>
#include <iostream>
#include <memory>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/matrix_market.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"
#include "hpfcg/util/timer.hpp"

int main(int argc, char** argv) {
  using hpfcg::hpf::Distribution;
  using hpfcg::hpf::DistributedVector;

  hpfcg::util::Cli cli(argc, argv);
  const auto side = static_cast<std::size_t>(
      cli.get_int("side", 48, "grid side (problem size n = side^2)"));
  const int np = static_cast<int>(cli.get_int("np", 4, "simulated processors"));
  const double tol = cli.get_double("tol", 1e-10, "relative tolerance");
  const std::string matrix_path = cli.get(
      "matrix", "", "Matrix Market file to solve instead of the Poisson grid");
  if (cli.help_requested()) {
    std::cout << cli.help_text("quickstart");
    return EXIT_SUCCESS;
  }
  cli.finish();

  // The workload: a 2-D Poisson problem, the sparse-matrix application the
  // paper's introduction motivates (CFD / structural analysis) — or any
  // symmetric positive-definite Matrix Market file via --matrix.
  const auto a = matrix_path.empty()
                     ? hpfcg::sparse::laplacian_2d(side, side)
                     : hpfcg::sparse::read_matrix_market_file(matrix_path);
  if (!matrix_path.empty() && !a.is_symmetric(1e-12)) {
    std::cerr << "warning: " << matrix_path
              << " is not symmetric; CG may not converge\n";
  }
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 42);
  std::cout << "Solving " << n << "x" << n << " "
            << (matrix_path.empty() ? "Poisson" : "Matrix Market")
            << " system ("
            << a.nnz() << " nonzeros) on " << np
            << " simulated processors\n";

  // Serial reference.
  std::vector<double> x_serial(n, 0.0);
  hpfcg::util::Timer t_serial;
  const auto serial =
      hpfcg::solvers::cg(a, b_full, x_serial, {.rel_tolerance = tol});
  const double serial_secs = t_serial.seconds();

  // Distributed solve.
  hpfcg::msg::Runtime machine(np);
  hpfcg::solvers::SolveResult dist_result;
  hpfcg::util::Timer t_dist;
  machine.run([&](hpfcg::msg::Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const hpfcg::solvers::DistOp<double> op =
        [&](const DistributedVector<double>& p, DistributedVector<double>& q) {
          mat.matvec(p, q);
        };
    const auto res =
        hpfcg::solvers::cg_dist<double>(op, b, x, {.rel_tolerance = tol});
    if (proc.rank() == 0) dist_result = res;

    // Verify against the serial solution from inside the SPMD region.
    const auto full = x.to_global();
    double max_err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_err = std::max(max_err, std::abs(full[i] - x_serial[i]));
    }
    if (proc.rank() == 0) {
      std::cout << "max |x_dist - x_serial| = " << max_err << "\n";
    }
  });
  const double dist_secs = t_dist.seconds();

  hpfcg::util::Table table("quickstart results",
                           {"solver", "iterations", "rel.residual",
                            "wall[s]", "modeled[s]"});
  table.add_row({"serial CG", std::to_string(serial.iterations),
                 hpfcg::util::fmt(serial.relative_residual, 3),
                 hpfcg::util::fmt(serial_secs, 3), "-"});
  table.add_row({"distributed CG (NP=" + std::to_string(np) + ")",
                 std::to_string(dist_result.iterations),
                 hpfcg::util::fmt(dist_result.relative_residual, 3),
                 hpfcg::util::fmt(dist_secs, 3),
                 hpfcg::util::fmt(machine.modeled_makespan(), 3)});
  table.print(std::cout);

  const auto total = machine.total_stats();
  std::cout << "\nmachine totals: " << hpfcg::util::fmt_count(total.flops)
            << " flops, " << hpfcg::util::fmt_count(total.messages_sent)
            << " messages, " << hpfcg::util::fmt_count(total.bytes_sent)
            << " bytes\n";
  return dist_result.converged ? EXIT_SUCCESS : EXIT_FAILURE;
}
