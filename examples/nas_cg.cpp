// NAS-CG-style benchmark driver.
//
// The paper notes CG's role in benchmark suites (NAS, PARKBENCH).  This
// example mirrors the NAS CG kernel's structure: a random sparse SPD matrix,
// a fixed number of outer solves with an inner CG of fixed iteration count,
// reporting solution norms and modeled performance — scaled down to run in
// seconds on a laptop-simulated machine.
//
//   ./nas_cg --n 1400 --nnz-per-row 7 --outer 4 --inner 25 --np 8

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"
#include "hpfcg/util/timer.hpp"

int main(int argc, char** argv) {
  using hpfcg::hpf::Distribution;
  using hpfcg::hpf::DistributedVector;
  namespace sv = hpfcg::solvers;

  hpfcg::util::Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(
      cli.get_int("n", 1400, "matrix dimension (NAS class S is 1400)"));
  const auto row_nnz = static_cast<std::size_t>(
      cli.get_int("nnz-per-row", 7, "average nonzeros per row"));
  const int outer = static_cast<int>(cli.get_int("outer", 4, "outer solves"));
  const auto inner = static_cast<std::size_t>(
      cli.get_int("inner", 25, "inner CG iterations per outer solve"));
  const int np = static_cast<int>(cli.get_int("np", 8, "simulated processors"));
  if (cli.help_requested()) {
    std::cout << cli.help_text("nas_cg");
    return EXIT_SUCCESS;
  }
  cli.finish();

  const auto a = hpfcg::sparse::random_spd(n, row_nnz, 314159);
  std::cout << "NAS-CG-like kernel: n=" << n << ", nnz=" << a.nnz()
            << ", NP=" << np << ", " << outer << " outer x " << inner
            << " inner iterations\n";

  hpfcg::msg::Runtime machine(np);
  hpfcg::util::Table table("outer-iteration log",
                           {"outer", "zeta-like norm", "final rel.residual"});
  hpfcg::util::Timer wall;
  machine.run([&](hpfcg::msg::Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };

    // x starts as all-ones (the NAS convention); each outer step solves
    // A z = x with a fixed-iteration CG and renormalizes.
    DistributedVector<double> x(proc, dist), z(proc, dist);
    hpfcg::hpf::fill(x, 1.0);
    for (int it = 1; it <= outer; ++it) {
      hpfcg::hpf::fill(z, 0.0);
      const auto res = sv::cg_dist<double>(
          op, x, z, {.max_iterations = inner, .rel_tolerance = 0.0});
      const double znorm = hpfcg::hpf::norm2(z);
      // NAS's zeta estimate: shift + 1 / (x . z).
      const double xz = hpfcg::hpf::dot_product(x, z);
      const double zeta = 20.0 + 1.0 / xz;
      // x = z / ||z||
      hpfcg::hpf::assign(z, x);
      hpfcg::hpf::scale(1.0 / znorm, x);
      if (proc.rank() == 0) {
        table.add_row({std::to_string(it), hpfcg::util::fmt(zeta, 10),
                       hpfcg::util::fmt(res.relative_residual, 3)});
      }
    }
  });
  const double secs = wall.seconds();
  table.print(std::cout);

  const auto total = machine.total_stats();
  const double modeled = machine.modeled_makespan();
  std::cout << "\nwall " << hpfcg::util::fmt(secs, 3) << " s; modeled "
            << hpfcg::util::fmt(modeled, 3) << " s on the simulated machine ("
            << hpfcg::util::fmt_count(total.flops) << " flops => "
            << hpfcg::util::fmt(
                   static_cast<double>(total.flops) / modeled / 1e6, 4)
            << " modeled Mflop/s aggregate)\n";
  return EXIT_SUCCESS;
}
