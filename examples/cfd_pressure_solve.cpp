// CFD scenario: the pressure-Poisson solve at the heart of an
// incompressible fluid step (the "computational fluid dynamics" application
// of the paper's introduction).
//
// A lid-driven-cavity-style projection: we build the 2-D Poisson operator
// for the pressure correction, a divergence right-hand side from a synthetic
// velocity field, and compare plain CG against Jacobi- and SSOR-
// preconditioned CG — the Section 2.1 claim that preconditioning buys
// convergence speed, on the paper's own problem class.
//
//   ./cfd_pressure_solve --nx 64 --ny 64 --np 4

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"
#include "hpfcg/util/table.hpp"
#include "hpfcg/util/timer.hpp"

namespace {

/// Divergence of a synthetic recirculating velocity field on the grid —
/// the right-hand side a projection step would feed the Poisson solve.
std::vector<double> divergence_rhs(std::size_t nx, std::size_t ny) {
  std::vector<double> b(nx * ny);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const double fx = static_cast<double>(x) / static_cast<double>(nx - 1);
      const double fy = static_cast<double>(y) / static_cast<double>(ny - 1);
      // div u of u = (sin(pi fx) cos(pi fy), -cos(pi fx) sin(pi fy))-ish
      b[y * nx + x] = std::sin(3.14159265358979 * fx) *
                          std::sin(3.14159265358979 * fy) -
                      0.5 * fx * fy;
    }
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  using hpfcg::hpf::Distribution;
  using hpfcg::hpf::DistributedVector;
  namespace sv = hpfcg::solvers;

  hpfcg::util::Cli cli(argc, argv);
  const auto nx = static_cast<std::size_t>(cli.get_int("nx", 48, "grid x"));
  const auto ny = static_cast<std::size_t>(cli.get_int("ny", 48, "grid y"));
  const int np = static_cast<int>(cli.get_int("np", 4, "simulated processors"));
  const double tol = cli.get_double("tol", 1e-8, "relative tolerance");
  if (cli.help_requested()) {
    std::cout << cli.help_text("cfd_pressure_solve");
    return EXIT_SUCCESS;
  }
  cli.finish();

  const auto a = hpfcg::sparse::laplacian_2d(nx, ny);
  const std::size_t n = a.n_rows();
  const auto b_full = divergence_rhs(nx, ny);
  std::cout << "Pressure-Poisson solve on a " << nx << "x" << ny
            << " grid (n=" << n << ", nnz=" << a.nnz() << ")\n";

  hpfcg::util::Table table("pressure solve: preconditioning comparison",
                           {"method", "iterations", "rel.residual",
                            "wall[ms]", "modeled[ms] (NP)"});

  // --- serial baselines --------------------------------------------------
  const auto serial_row = [&](const char* name, auto&& run) {
    std::vector<double> x(n, 0.0);
    hpfcg::util::Timer t;
    const sv::SolveResult res = run(x);
    table.add_row({name, std::to_string(res.iterations),
                   hpfcg::util::fmt(res.relative_residual, 3),
                   hpfcg::util::fmt(t.millis(), 4), "-"});
  };
  serial_row("serial CG", [&](std::vector<double>& x) {
    return sv::cg(a, b_full, x, {.max_iterations = 5000,
                                 .rel_tolerance = tol});
  });
  serial_row("serial PCG(Jacobi)", [&](std::vector<double>& x) {
    return sv::pcg(a, sv::jacobi_preconditioner(a), b_full, x,
                   {.max_iterations = 5000, .rel_tolerance = tol});
  });
  serial_row("serial PCG(SSOR w=1.2)", [&](std::vector<double>& x) {
    return sv::pcg(a, sv::ssor_preconditioner(a, 1.2), b_full, x,
                   {.max_iterations = 5000, .rel_tolerance = tol});
  });

  // --- distributed CG and Jacobi-PCG --------------------------------------
  const auto diag = a.diagonal();
  for (const bool precondition : {false, true}) {
    hpfcg::msg::Runtime machine(np);
    sv::SolveResult result;
    hpfcg::util::Timer t;
    machine.run([&](hpfcg::msg::Process& proc) {
      auto dist = std::make_shared<const Distribution>(
          Distribution::block(n, proc.nprocs()));
      auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist);
      b.from_global(b_full);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        mat.matvec(p, q);
      };
      sv::SolveOptions opts{.max_iterations = 5000, .rel_tolerance = tol};
      sv::SolveResult res;
      if (precondition) {
        DistributedVector<double> inv_diag(proc, dist);
        inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
        res = sv::pcg_dist<double>(op, sv::jacobi_dist(inv_diag), b, x, opts);
      } else {
        res = sv::cg_dist<double>(op, b, x, opts);
      }
      if (proc.rank() == 0) result = res;
    });
    table.add_row(
        {precondition ? "distributed PCG(Jacobi)" : "distributed CG",
         std::to_string(result.iterations),
         hpfcg::util::fmt(result.relative_residual, 3),
         hpfcg::util::fmt(t.millis(), 4),
         hpfcg::util::fmt(machine.modeled_makespan() * 1e3, 4) + " (NP=" +
             std::to_string(np) + ")"});
  }

  table.print(std::cout);
  std::cout << "\nNote: modeled time assumes the 1995-era machine of the\n"
               "cost model (t_startup=50us, t_comm=10ns/B, t_flop=5ns).\n";
  return EXIT_SUCCESS;
}
