// Experiment TR2: recover the simulation's real machine parameters from
// traced collectives and validate the paper's reduction-tree cost shape.
//
// Sweep: NP in {1..8}, batch widths {1, 16, 256, 4096}, many
// repetitions of allreduce_batch after an untimed warmup sweep
// (discarded via Session::clear()) that spins up threads and fills the
// envelope buffer pools.  Every traced tree collective yields one
// observation; the per-config median wall durations feed the
// least-squares fit
//
//     T = t_fixed + t_startup · startups + t_comm · bytes.
//
// Startup counting: the CostModel charges the tree's CRITICAL PATH,
// 2·ceil(log2 NP) hops, because it models hops at the same level running
// concurrently.  On the simulation's actual network — np threads handing
// envelopes through mutex-guarded mailboxes on however many cores the
// host grants (one, in CI) — same-level hops serialize, so the wall
// clock pays for every edge of both passes: startups = 2·(NP-1), bytes =
// startups · width · 8.  That count is exact for every NP (each tree
// pass has NP-1 edges regardless of shape), which is why the sweep can
// cover all of {1..8} rather than just powers of two.
//
// The table prints the fitted terms next to the CostModel's analytical
// defaults (the modeled 1995-era machine) — they describe different
// machines (this host vs the paper's), so the comparison is a report, not
// a gate.  The gate is internal consistency: for NP in {2, 4, 8} the
// fitted curve must reproduce the measured medians within 25%.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/trace/model_fit.hpp"
#include "hpfcg/trace/trace.hpp"

using hpfcg::msg::Process;

namespace {

struct Config {
  int np = 0;
  std::size_t width = 0;
  double startups = 0.0;
  double bytes = 0.0;
  double median_s = 0.0;
  std::size_t observations = 0;
};

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main() {
  if (!hpfcg::trace::kCompiled) {
    std::cout << "TR2 — model fit: tracing compiled out (HPFCG_TRACE=OFF); "
                 "nothing to fit.\n";
    return 0;
  }
  hpfcg::trace::ScopedEnable mode(true);

  const std::vector<std::size_t> widths{1, 16, 256, 4096};
  const int reps = 256;
  std::vector<Config> configs;

  for (int np = 1; np <= 8; ++np) {
    hpfcg::msg::Runtime rt(np);
    const auto sweep = [&](int rounds) {
      return [&widths, rounds](Process& p) {
        for (const std::size_t k : widths) {
          std::vector<double> vals(k, static_cast<double>(p.rank() + 1));
          for (int rep = 0; rep < rounds; ++rep) {
            p.allreduce_batch(std::span<double>(vals));
          }
        }
      };
    };
    // Untimed warmup: page in the buffers, park recycled envelopes in the
    // mailbox pools, let the threads settle — then forget those spans.
    rt.run(sweep(reps / 4));
    rt.tracer()->clear();
    rt.run(sweep(reps));
    // Rank 0 sits on every tree's critical path (root of the reduce pass,
    // source of the broadcast pass) — its spans are the observations.
    const auto spans = rt.tracer()->rank(0).spans();
    for (const std::size_t k : widths) {
      std::vector<double> durations;
      for (const auto& s : spans) {
        if (s.kind == hpfcg::trace::SpanKind::kAllreduceBatch &&
            s.a == static_cast<std::uint32_t>(k)) {
          durations.push_back(s.seconds());
        }
      }
      Config c;
      c.np = np;
      c.width = k;
      // Both tree passes serialize on this machine (see file comment), so
      // every edge is a paid startup — NP-1 per pass, not ceil(log2 NP).
      c.startups = 2.0 * static_cast<double>(np - 1);
      c.bytes = c.startups * static_cast<double>(k) * sizeof(double);
      c.median_s = median(durations);
      c.observations = durations.size();
      configs.push_back(c);
    }
  }

  // Fit on the per-config medians — one robust point per (NP, width).
  // NP=1 is swept (and printed below) but excluded from the regression:
  // with no tree there are no edges, so its span measures only the local
  // merge loop — a compute cost outside the communication model.  Feeding
  // it in as a (0, 0, T) observation would force t_fixed to equal that
  // width-dependent merge time instead of the tree term's offset.
  std::vector<hpfcg::trace::FitSample> samples;
  samples.reserve(configs.size());
  for (const auto& c : configs) {
    if (c.np < 2) continue;
    samples.push_back({c.startups, c.bytes, c.median_s});
  }
  // Relative (1/T-weighted) least squares: the observations span two
  // orders of magnitude across NP, and the gate below is percent error,
  // so percent error is the objective to minimize.
  const auto fit = hpfcg::trace::fit_cost_model(samples,
                                                /*with_intercept=*/true,
                                                /*relative=*/true);

  const hpfcg::msg::CostParams model;  // the analytical defaults
  hpfcg::util::Table terms(
      "TR2 — fitted simulation parameters vs CostModel analytical defaults",
      {"term", "fitted (this host)", "CostModel default (modeled machine)"});
  terms.add_row({"t_fixed [us/call]", hpfcg::util::fmt(fit.t_fixed * 1e6, 3),
                 "- (closed form omits it)"});
  terms.add_row({"t_startup [us/edge]",
                 hpfcg::util::fmt(fit.t_startup * 1e6, 3),
                 hpfcg::util::fmt(model.t_startup * 1e6, 3)});
  terms.add_row({"t_comm [ns/byte]", hpfcg::util::fmt(fit.t_comm * 1e9, 3),
                 hpfcg::util::fmt(model.t_comm * 1e9, 3)});
  // Relative fit => rms_residual is a dimensionless relative error.
  terms.add_row({"rms rel. error [%]",
                 hpfcg::util::fmt(fit.rms_residual * 100.0, 3), "-"});
  terms.print(std::cout);

  hpfcg::util::Table table(
      "TR2 — measured vs fitted allreduce_batch wall time per config",
      {"NP", "width", "obs", "measured[us]", "fitted[us]", "err[%]"});
  bool gate_ok = fit.ok;
  for (int np = 1; np <= 8; ++np) {
    std::vector<double> errs;
    for (const auto& c : configs) {
      if (c.np != np) continue;
      if (np < 2) {
        // Shown for completeness, excluded from the fit (see above).
        table.add_row({std::to_string(c.np), std::to_string(c.width),
                       std::to_string(c.observations),
                       hpfcg::util::fmt(c.median_s * 1e6, 3), "-", "-"});
        continue;
      }
      const double pred = fit.predict(c.startups, c.bytes);
      const double err =
          c.median_s > 0.0 ? std::abs(pred - c.median_s) / c.median_s : 0.0;
      errs.push_back(err);
      table.add_row({std::to_string(c.np), std::to_string(c.width),
                     std::to_string(c.observations),
                     hpfcg::util::fmt(c.median_s * 1e6, 3),
                     hpfcg::util::fmt(pred * 1e6, 3),
                     hpfcg::util::fmt(err * 100.0, 1)});
    }
    // Gate on the per-NP median error: a single noisy config (scheduler
    // hiccup on a loaded host) must not flip the bit the acceptance
    // criterion actually cares about — the tree term's shape.
    if ((np == 2 || np == 4 || np == 8) && median(errs) > 0.25) {
      gate_ok = false;
    }
  }
  table.print(std::cout);

  std::cout << "\nReading: the fitted tree term reproduces the measured\n"
               "medians (gate: per-NP median error <= 25% for NP in\n"
               "{2,4,8}), confirming the paper's two-term\n"
               "t_startup*edges + t_comm*bytes shape holds for the\n"
               "simulation itself — with the serialized edge count\n"
               "2*(NP-1), since same-level tree hops share cores and\n"
               "mailbox locks here rather than running concurrently.\n"
               "t_fixed is a free offset; it fits slightly negative\n"
               "because per-edge cost creeps up with NP (longer scheduler\n"
               "queues), which tilts the affine fit.  The fitted\n"
               "magnitudes differ from the CostModel defaults by design:\n"
               "one column measures this host's threads-and-mutexes\n"
               "network, the other models a 1995 message-passing machine.\n";
  std::cout << "\nMODEL_FIT_GATE " << (gate_ok ? "PASS" : "FAIL") << "\n";
  return gate_ok ? 0 : 1;
}
