// Ablation B1 (beyond the paper): 2-D (BLOCK, BLOCK) decomposition vs the
// paper's 1-D stripes.
//
// Section 4 proves 1-D stripes cannot beat O(n) communication per sweep in
// either direction.  The 2-D grid decomposition (from Kumar et al., the
// paper's own reference [17]) gathers the vector only within grid columns
// and reduces partial results only within grid rows: O(n/sqrt(P)) per rank.
// This bench quantifies the crossover the paper's stripes-only analysis
// leaves on the table.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/grid2d.hpp"
#include "hpfcg/hpf/matvec_dense.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::hpf::DenseGrid2DMatrix;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::hpf::Grid2D;
using hpfcg::msg::Process;

namespace {

double entry(std::size_t i, std::size_t j) {
  return 1.0 / (1.0 + static_cast<double>(i + 2 * j));
}

}  // namespace

int main() {
  hpfcg::util::Table table(
      "B1 — dense matvec: 1-D stripes vs 2-D (BLOCK,BLOCK) grid",
      {"layout", "n", "NP", "bytes/rank(max)", "msgs/rank(max)",
       "modeled[ms]", "wall[ms]"});

  for (const std::size_t n : {std::size_t{256}, std::size_t{512}}) {
    for (const int np : {4, 16}) {
      // 1-D stripes (the paper's Scenario 1).
      hpfcg::util::Timer w1;
      auto rt1 = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto dist = std::make_shared<const Distribution>(
            Distribution::block(n, np));
        hpfcg::hpf::DenseRowBlockMatrix<double> a(proc, dist);
        a.set_from(entry);
        DistributedVector<double> p(proc, dist), q(proc, dist);
        p.set_from([](std::size_t g) { return static_cast<double>(g % 3); });
        hpfcg::hpf::matvec_rowwise(a, p, q);
      });
      const double wall1 = w1.millis();
      // 2-D grid.
      hpfcg::util::Timer w2;
      auto rt2 = hpfcg_bench::run_machine(np, [&](Process& proc) {
        const auto grid = Grid2D::squarest(np);
        DenseGrid2DMatrix<double> a(proc, grid, n);
        a.set_from(entry);
        DistributedVector<double> p(proc, a.vector_dist());
        DistributedVector<double> q(proc, a.result_dist());
        p.set_from([](std::size_t g) { return static_cast<double>(g % 3); });
        a.matvec(p, q);
      });
      const double wall2 = w2.millis();

      const auto per_rank_max = [](const hpfcg::msg::Runtime& rt) {
        std::uint64_t bytes = 0, msgs = 0;
        for (int r = 0; r < rt.nprocs(); ++r) {
          bytes = std::max(bytes, rt.stats(r).bytes_sent);
          msgs = std::max(msgs, rt.stats(r).messages_sent);
        }
        return std::make_pair(bytes, msgs);
      };
      const auto [b1, m1] = per_rank_max(*rt1);
      const auto [b2, m2] = per_rank_max(*rt2);
      table.add_row({"stripes (BLOCK,*)", std::to_string(n),
                     std::to_string(np), hpfcg::util::fmt_count(b1),
                     hpfcg::util::fmt_count(m1),
                     hpfcg::util::fmt(rt1->modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt(wall1, 4)});
      table.add_row({"2-D grid (BLOCK,BLOCK)", std::to_string(n),
                     std::to_string(np), hpfcg::util::fmt_count(b2),
                     hpfcg::util::fmt_count(m2),
                     hpfcg::util::fmt(rt2->modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt(wall2, 4)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: at NP=16 the 2-D layout moves ~half the stripes'\n"
         "per-rank bytes (n/pr + n/pc ≈ n/2 on a 4x4 grid vs ~n for\n"
         "stripes), and the gap widens as sqrt(NP).  It pays ~log NP more\n"
         "start-ups, so stripes still win when t_startup dominates (small\n"
         "n) — the crossover the paper's stripes-only Section 4 analysis\n"
         "leaves unexplored.\n";
  return 0;
}
