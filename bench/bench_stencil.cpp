// Ablation B3: matrix-free stencil (CSHIFT/EOSHIFT) vs assembled CSR.
//
// HPF programs often express grid operators with shift intrinsics instead
// of assembled sparse matrices.  For the 1-D Laplacian both compute the
// same q = A p, but their communication differs fundamentally:
//   assembled CSR: all-to-all broadcast of p      — O(n) bytes per sweep;
//   shift stencil: boundary exchange per EOSHIFT  — O(1) bytes per rank.
// CG over both operators produces identical iterates; the table shows the
// communication gap and where the crossover lies.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/shift.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
namespace sv = hpfcg::solvers;

int main() {
  hpfcg::util::Table table(
      "B3 — CG on the 1-D Laplacian: assembled CSR vs CSHIFT stencil",
      {"operator", "n", "NP", "iters", "bytes/it", "msgs/it", "modeled[ms]"});

  for (const std::size_t n : {std::size_t{1024}, std::size_t{8192}}) {
    const auto a = hpfcg::sparse::tridiagonal(n, 2.0, -1.0);
    const auto b_full = hpfcg::sparse::random_rhs(n, 555);
    const sv::SolveOptions opts{.max_iterations = 60, .rel_tolerance = 0.0};

    for (const int np : {4, 16}) {
      for (const bool stencil : {false, true}) {
        sv::SolveResult result;
        auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
          auto dist = std::make_shared<const Distribution>(
              Distribution::block(n, np));
          DistributedVector<double> b(proc, dist), x(proc, dist);
          b.from_global(b_full);
          sv::DistOp<double> op;
          std::shared_ptr<hpfcg::sparse::DistCsr<double>> mat;
          if (stencil) {
            op = [](const DistributedVector<double>& p,
                    DistributedVector<double>& q) {
              hpfcg::hpf::laplace1d_stencil(p, q);
            };
          } else {
            mat = std::make_shared<hpfcg::sparse::DistCsr<double>>(
                hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist));
            op = [mat](const DistributedVector<double>& p,
                       DistributedVector<double>& q) { mat->matvec(p, q); };
          }
          const auto res = sv::cg_dist<double>(op, b, x, opts);
          if (proc.rank() == 0) result = res;
        });
        const double it = static_cast<double>(result.iterations);
        table.add_row(
            {stencil ? "CSHIFT stencil" : "assembled CSR",
             std::to_string(n), std::to_string(np),
             std::to_string(result.iterations),
             hpfcg::util::fmt(
                 static_cast<double>(rt->total_stats().bytes_sent) / it, 5),
             hpfcg::util::fmt(
                 static_cast<double>(rt->total_stats().messages_sent) / it,
                 4),
             hpfcg::util::fmt(rt->modeled_makespan() * 1e3, 4)});
      }
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the stencil's boundary exchange keeps bytes per\n"
         "iteration flat in n (two doubles per rank) while the assembled\n"
         "operator's broadcast grows linearly — at n=8192, NP=16 the\n"
         "stencil moves ~3 orders of magnitude less matvec data, leaving\n"
         "the DOT_PRODUCT merges as the only O(log NP) term.  This is the\n"
         "structured-grid regime where HPF shone; the paper's CG focus is\n"
         "the *irregular* regime where no such stencil exists.\n";
  return 0;
}
