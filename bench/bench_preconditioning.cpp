// Experiment A7 (Section 2.1): spectral behaviour of CG.
//
//   * CG converges in at most n_e iterations, n_e = #distinct eigenvalues;
//   * wide spectra need many iterations;
//   * preconditioning "will increase the speed of convergence": Jacobi on
//     badly scaled systems, SSOR on Laplacians.

#include <iostream>
#include <vector>

#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/table.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;

int main() {
  // --- distinct-eigenvalue sweep ----------------------------------------
  hpfcg::util::Table spectrum(
      "A7 — CG iterations vs number of distinct eigenvalues (n=128)",
      {"n_e (distinct)", "CG iterations", "paper bound n_e"});
  for (const int ne : {1, 2, 4, 8, 16, 32, 64}) {
    const std::size_t n = 128;
    std::vector<double> eigs(n);
    for (std::size_t i = 0; i < n; ++i) {
      eigs[i] = 1.0 + 2.0 * static_cast<double>(
                                i % static_cast<std::size_t>(ne));
    }
    const auto a = sp::diagonal_spectrum(eigs);
    const auto b = sp::random_rhs(n, 700 + ne);
    std::vector<double> x(n, 0.0);
    const auto res = sv::cg(a, b, x, {.max_iterations = 1000,
                                      .rel_tolerance = 1e-10});
    spectrum.add_row({std::to_string(ne), std::to_string(res.iterations),
                      std::to_string(ne)});
  }
  spectrum.print(std::cout);

  // --- condition-number sweep -------------------------------------------
  hpfcg::util::Table cond("A7 — CG iterations vs spectral spread (n=128)",
                          {"condition number", "CG iterations"});
  for (const double kappa : {2.0, 10.0, 100.0, 1000.0, 10000.0}) {
    const std::size_t n = 128;
    std::vector<double> eigs(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(n - 1);
      eigs[i] = 1.0 + (kappa - 1.0) * t;
    }
    const auto a = sp::diagonal_spectrum(eigs);
    const auto b = sp::random_rhs(n, 811);
    std::vector<double> x(n, 0.0);
    const auto res = sv::cg(a, b, x, {.max_iterations = 5000,
                                      .rel_tolerance = 1e-10});
    cond.add_row({hpfcg::util::fmt(kappa, 6),
                  std::to_string(res.iterations)});
  }
  cond.print(std::cout);

  // --- preconditioners ----------------------------------------------------
  hpfcg::util::Table prec(
      "A7 — preconditioned CG (iterations to 1e-10)",
      {"system", "plain CG", "PCG(Jacobi)", "PCG(SSOR 1.2)"});
  const auto run_all = [&](const std::string& label,
                           const sp::Csr<double>& a) {
    const auto b = sp::random_rhs(a.n_rows(), 900);
    const sv::SolveOptions opts{.max_iterations = 20000,
                                .rel_tolerance = 1e-10};
    std::vector<double> x0(a.n_rows(), 0.0), x1(a.n_rows(), 0.0),
        x2(a.n_rows(), 0.0);
    const auto r0 = sv::cg(a, b, x0, opts);
    const auto r1 = sv::pcg(a, sv::jacobi_preconditioner(a), b, x1, opts);
    const auto r2 = sv::pcg(a, sv::ssor_preconditioner(a, 1.2), b, x2, opts);
    prec.add_row({label, std::to_string(r0.iterations),
                  std::to_string(r1.iterations),
                  std::to_string(r2.iterations)});
  };

  run_all("2-D Laplacian 32x32", sp::laplacian_2d(32, 32));
  run_all("3-D Laplacian 10^3", sp::laplacian_3d(10, 10, 10));
  {
    // Badly scaled tridiagonal: rows scaled by decades.
    const std::size_t n = 512;
    sp::Coo<double> coo(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      const double s = 1.0 + 999.0 * static_cast<double>(i % 4);
      coo.add(i, i, 2.5 * s);
      if (i + 1 < n) coo.add_sym(i, i + 1, -1.0);
    }
    run_all("badly scaled tridiagonal", sp::Csr<double>::from_coo(std::move(coo)));
  }
  prec.print(std::cout);

  std::cout
      << "\nReading: iterations track n_e exactly (the paper's 'at most\n"
         "n_e' bound is tight for generic right-hand sides), grow with the\n"
         "spectral spread, and drop sharply under Jacobi (scaling) or SSOR\n"
         "(smoothing) preconditioning — Section 2.1's claims.\n";
  return 0;
}
