// Experiment A5 (Section 5.2.2): irregular sparsity defeats uniform
// distributions; the load-balancing partitioner restores balance.
//
// Sweeps matrices from regular (Laplacian) to heavily irregular (power-law
// with fat hubs) and reports, per partitioner: the per-processor nonzero
// bottleneck, the modeled matvec critical path, and end-to-end CG time.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/ext/sparse_descriptor.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::ext::Partitioner;
using hpfcg::ext::SparseMatrixCsr;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
namespace sv = hpfcg::solvers;

namespace {

void bench_matrix(const std::string& label, const hpfcg::sparse::Csr<double>& a,
                  int np) {
  hpfcg::util::Table table(
      "A5 — " + label + " (n=" + std::to_string(a.n_rows()) +
          ", nnz=" + std::to_string(a.nnz()) + ", NP=" + std::to_string(np) +
          ")",
      {"partitioner", "max nnz", "imbalance", "max compute[us]",
       "matvec modeled[ms]", "CG modeled[ms]", "CG iters"});
  const auto b_full = hpfcg::sparse::random_rhs(a.n_rows(), 505);
  const double avg = static_cast<double>(a.nnz()) / np;

  for (const auto which :
       {Partitioner::kUniformAtomBlock, Partitioner::kBalancedGreedy,
        Partitioner::kBalancedOptimal}) {
    // Single matvec critical path.
    auto rt_mv = hpfcg_bench::run_machine(np, [&](Process& proc) {
      SparseMatrixCsr<double> sm(proc, a, which);
      auto p = sm.make_vector();
      auto q = sm.make_vector();
      p.set_from([](std::size_t g) { return static_cast<double>(g % 5); });
      sm.dist().matvec(p, q);
    });
    // Whole CG solve.
    sv::SolveResult result;
    std::size_t max_load = 0;
    auto rt_cg = hpfcg_bench::run_machine(np, [&](Process& proc) {
      SparseMatrixCsr<double> sm(proc, a, which);
      auto b = sm.make_vector();
      auto x = sm.make_vector();
      b.from_global(b_full);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        sm.dist().matvec(p, q);
      };
      const auto res = sv::cg_dist<double>(
          op, b, x, {.max_iterations = 500, .rel_tolerance = 1e-8});
      if (proc.rank() == 0) {
        result = res;
        for (int r = 0; r < np; ++r) {
          max_load = std::max(max_load, sm.dist().nnz_dist().local_count(r));
        }
      }
    });
    // The quantity the partitioner balances: the per-rank multiply-add
    // time of the sweep (the broadcast cost is partition-independent).
    double max_compute = 0.0;
    for (int r = 0; r < np; ++r) {
      max_compute =
          std::max(max_compute, rt_mv->stats(r).modeled_compute_seconds);
    }
    table.add_row({hpfcg::ext::partitioner_name(which),
                   hpfcg::util::fmt_count(max_load),
                   hpfcg::util::fmt(static_cast<double>(max_load) / avg, 3),
                   hpfcg::util::fmt(max_compute * 1e6, 4),
                   hpfcg::util::fmt(rt_mv->modeled_makespan() * 1e3, 4),
                   hpfcg::util::fmt(rt_cg->modeled_makespan() * 1e3, 4),
                   std::to_string(result.iterations)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  const int np = 8;
  bench_matrix("regular 2-D Laplacian (uniform rows)",
               hpfcg::sparse::laplacian_2d(36, 36), np);
  bench_matrix("mildly irregular random SPD",
               hpfcg::sparse::random_spd(1296, 6, 71), np);
  bench_matrix("power-law irregular (fat hubs)",
               hpfcg::sparse::powerlaw_spd(1296, 3, 8, 200, 72), np);

  std::cout
      << "\nReading: on the regular Laplacian all partitioners tie (the\n"
         "uniform case of Section 5.2.1); as the row-degree distribution\n"
         "grows tails, the uniform atom blocks leave one processor with a\n"
         "multiple of the average load and the modeled critical path grows\n"
         "with it, while the balanced partitioners hold imbalance near 1 —\n"
         "the motivation for REDISTRIBUTE ... USING a load-balancing\n"
         "partitioner.\n";
  return 0;
}
