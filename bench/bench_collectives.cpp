// Experiment A3: the runtime's collectives must track the closed-form
// topology formulas the paper's analysis is written in —
//   broadcast/reduce:  ceil(log2 NP) * (t_s + m*t_c)
//   allgather (the "all-to-all broadcast"):  t_s*logNP + t_c*total  on a
//   hypercube, (NP-1)*(t_s + m*t_c) on a ring.
// Table: modeled makespan (from instrumented messages) vs the prediction,
// per collective, NP and topology.

#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/msg/process.hpp"

using hpfcg::msg::CostParams;
using hpfcg::msg::Process;
using hpfcg::msg::Topology;

namespace {

void bench_topology(Topology topo) {
  const CostParams params;
  const std::size_t elems = 4096;  // payload elements per collective
  hpfcg::util::Table table(
      "A3 — collectives on " + hpfcg::msg::topology_name(topo) +
          " (modeled vs closed form), payload " + std::to_string(elems) +
          " doubles",
      {"collective", "NP", "msgs total", "bytes total", "modeled[us]",
       "predicted[us]"});

  for (const int np : {2, 4, 8, 16}) {
    // --- broadcast ---
    auto rt = hpfcg_bench::run_machine(
        np,
        [&](Process& p) {
          std::vector<double> buf(elems, 1.0);
          p.broadcast_into<double>(0, buf);
        },
        params, topo);
    table.add_row(
        {"broadcast", std::to_string(np),
         hpfcg::util::fmt_count(rt->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt->total_stats().bytes_sent),
         hpfcg::util::fmt(rt->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt->cost().broadcast_time(elems * 8) * 1e6, 4)});

    // --- allreduce (scalar merge of DOT_PRODUCT) ---
    auto rt2 = hpfcg_bench::run_machine(
        np, [&](Process& p) { (void)p.allreduce(1.0); }, params, topo);
    table.add_row(
        {"allreduce(1)", std::to_string(np),
         hpfcg::util::fmt_count(rt2->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt2->total_stats().bytes_sent),
         hpfcg::util::fmt(rt2->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt2->cost().allreduce_time(8) * 1e6, 4)});

    // --- allgather (the paper's all-to-all broadcast) ---
    const std::size_t per_rank = elems / static_cast<std::size_t>(np);
    auto rt3 = hpfcg_bench::run_machine(
        np,
        [&](Process& p) {
          std::vector<std::size_t> counts(static_cast<std::size_t>(np),
                                          per_rank);
          std::vector<double> local(per_rank, 2.0);
          std::vector<double> out;
          p.allgatherv<double>(local, out, counts);
        },
        params, topo);
    table.add_row(
        {"allgather", std::to_string(np),
         hpfcg::util::fmt_count(rt3->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt3->total_stats().bytes_sent),
         hpfcg::util::fmt(rt3->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt3->cost().allgather_time(per_rank * 8) * 1e6, 4)});

    // --- vector allreduce (the PRIVATE ... MERGE(+) primitive) ---
    auto rt4 = hpfcg_bench::run_machine(
        np,
        [&](Process& p) {
          std::vector<double> buf(elems, 1.0);
          p.allreduce_vec(buf);
        },
        params, topo);
    table.add_row(
        {"merge(+)", std::to_string(np),
         hpfcg::util::fmt_count(rt4->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt4->total_stats().bytes_sent),
         hpfcg::util::fmt(rt4->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt4->cost().allreduce_time(elems * 8) * 1e6, 4)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  for (const auto topo : {Topology::kHypercube, Topology::kRing,
                          Topology::kMesh2D, Topology::kFullyConnected}) {
    bench_topology(topo);
  }
  std::cout << "\nReading: modeled times stay within a small factor of the\n"
               "closed forms on every topology; the ring pays (NP-1)\n"
               "start-ups for the allgather where the hypercube pays logNP\n"
               "— exactly the distinction the paper's Section 4 draws.\n";
  return 0;
}
