// Experiment A3: the runtime's collectives must track the closed-form
// topology formulas the paper's analysis is written in —
//   broadcast/reduce:  ceil(log2 NP) * (t_s + m*t_c)
//   allgather (the "all-to-all broadcast"):  t_s*logNP + t_c*total  on a
//   hypercube, (NP-1)*(t_s + m*t_c) on a ring.
// Table: modeled makespan (from instrumented messages) vs the prediction,
// per collective, NP and topology.

#include <algorithm>
#include <chrono>
#include <functional>
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/msg/mailbox.hpp"
#include "hpfcg/msg/process.hpp"

using hpfcg::msg::CostParams;
using hpfcg::msg::Process;
using hpfcg::msg::Topology;

namespace {

void bench_topology(Topology topo) {
  const CostParams params;
  const std::size_t elems = 4096;  // payload elements per collective
  hpfcg::util::Table table(
      "A3 — collectives on " + hpfcg::msg::topology_name(topo) +
          " (modeled vs closed form), payload " + std::to_string(elems) +
          " doubles",
      {"collective", "NP", "msgs total", "bytes total", "modeled[us]",
       "predicted[us]"});

  for (const int np : {2, 4, 8, 16}) {
    // --- broadcast ---
    auto rt = hpfcg_bench::run_machine(
        np,
        [&](Process& p) {
          std::vector<double> buf(elems, 1.0);
          p.broadcast_into<double>(0, buf);
        },
        params, topo);
    table.add_row(
        {"broadcast", std::to_string(np),
         hpfcg::util::fmt_count(rt->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt->total_stats().bytes_sent),
         hpfcg::util::fmt(rt->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt->cost().broadcast_time(elems * 8) * 1e6, 4)});

    // --- allreduce (scalar merge of DOT_PRODUCT) ---
    auto rt2 = hpfcg_bench::run_machine(
        np, [&](Process& p) { (void)p.allreduce(1.0); }, params, topo);
    table.add_row(
        {"allreduce(1)", std::to_string(np),
         hpfcg::util::fmt_count(rt2->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt2->total_stats().bytes_sent),
         hpfcg::util::fmt(rt2->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt2->cost().allreduce_time(8) * 1e6, 4)});

    // --- allgather (the paper's all-to-all broadcast) ---
    const std::size_t per_rank = elems / static_cast<std::size_t>(np);
    auto rt3 = hpfcg_bench::run_machine(
        np,
        [&](Process& p) {
          std::vector<std::size_t> counts(static_cast<std::size_t>(np),
                                          per_rank);
          std::vector<double> local(per_rank, 2.0);
          std::vector<double> out;
          p.allgatherv<double>(local, out, counts);
        },
        params, topo);
    table.add_row(
        {"allgather", std::to_string(np),
         hpfcg::util::fmt_count(rt3->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt3->total_stats().bytes_sent),
         hpfcg::util::fmt(rt3->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt3->cost().allgather_time(per_rank * 8) * 1e6, 4)});

    // --- vector allreduce (the PRIVATE ... MERGE(+) primitive) ---
    auto rt4 = hpfcg_bench::run_machine(
        np,
        [&](Process& p) {
          std::vector<double> buf(elems, 1.0);
          p.allreduce_vec(buf);
        },
        params, topo);
    table.add_row(
        {"merge(+)", std::to_string(np),
         hpfcg::util::fmt_count(rt4->total_stats().messages_sent),
         hpfcg::util::fmt_count(rt4->total_stats().bytes_sent),
         hpfcg::util::fmt(rt4->modeled_makespan() * 1e6, 4),
         hpfcg::util::fmt(rt4->cost().allreduce_time(elems * 8) * 1e6, 4)});
  }
  table.print(std::cout);
}

/// Wall-clock of `reps` small-message collectives (the simulation's own
/// start-up cost), with the mailbox fast paths on vs off.  Small messages
/// are where the inline/pooled machinery matters: a scalar allreduce moves
/// 8-byte payloads that the fast path never heap-allocates.
void bench_mailbox_fastpath() {
  hpfcg::util::Table table(
      "A3b — mailbox fast path on small messages (wall-clock, host time)",
      {"workload", "NP", "fast paths", "wall[us]", "per op[us]"});
  const int reps = 2000;
  // Two workloads, one per fast path: the 8-byte scalar merge exercises
  // inline envelope storage; the 512-byte vector merge exceeds the inline
  // bound and exercises the per-mailbox buffer pool.
  struct Workload {
    const char* name;
    std::vector<int> nps;
    std::function<void(Process&)> body;
  };
  const Workload workloads[] = {
      // Burst send/recv isolates the message path from collective
      // lockstep: the receiver's queue is never empty after the first
      // message, so wall-clock tracks envelope construction — the part
      // the inline fast path deletes the allocation from.
      {"burst send(4) x2000",
       {2},
       [reps](Process& p) {
         const int kTag = 7;
         std::vector<double> payload(4, 1.0);
         if (p.rank() == 0) {
           for (int i = 0; i < reps; ++i) {
             p.send<double>(1, kTag, payload);
           }
         } else {
           std::vector<double> in(4);
           for (int i = 0; i < reps; ++i) {
             p.recv_into<double>(0, kTag, in);
           }
         }
       }},
      {"allreduce(1) x2000",
       {2, 4, 8},
       [reps](Process& p) {
         double acc = 0.0;
         for (int i = 0; i < reps; ++i) acc = p.allreduce(acc + 1.0);
         (void)acc;
       }},
      {"merge(64) x2000",
       {2, 4, 8},
       [reps](Process& p) {
         std::vector<double> buf(64, 1.0);
         for (int i = 0; i < reps; ++i) p.allreduce_vec(buf);
       }},
  };
  for (const auto& w : workloads) {
    for (const int np : w.nps) {
      for (const bool fast : {false, true}) {
        hpfcg::msg::set_buffer_pooling(fast);
        hpfcg::msg::set_inline_payloads(fast);
        // Best of 5 trials: scheduler noise at these wall times swamps a
        // single run, while the minimum tracks the achievable path cost.
        double us = 0.0;
        for (int trial = 0; trial < 5; ++trial) {
          const auto t0 = std::chrono::steady_clock::now();
          hpfcg_bench::run_machine(np, w.body);
          const auto t1 = std::chrono::steady_clock::now();
          const double trial_us =
              std::chrono::duration<double, std::micro>(t1 - t0).count();
          us = (trial == 0) ? trial_us : std::min(us, trial_us);
        }
        table.add_row({w.name, std::to_string(np), fast ? "on" : "off",
                       hpfcg::util::fmt(us, 0),
                       hpfcg::util::fmt(us / reps, 2)});
      }
    }
  }
  hpfcg::msg::set_buffer_pooling(true);
  hpfcg::msg::set_inline_payloads(true);
  table.print(std::cout);
}

}  // namespace

int main() {
  for (const auto topo : {Topology::kHypercube, Topology::kRing,
                          Topology::kMesh2D, Topology::kFullyConnected}) {
    bench_topology(topo);
  }
  bench_mailbox_fastpath();
  std::cout << "\nReading: modeled times stay within a small factor of the\n"
               "closed forms on every topology; the ring pays (NP-1)\n"
               "start-ups for the allgather where the hypercube pays logNP\n"
               "— exactly the distinction the paper's Section 4 draws.\n";
  return 0;
}
