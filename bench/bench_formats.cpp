// Experiment F1 (Figure 1 + Section 3): sparse storage formats.
//
// Prints the exact CSC trio of Figure 1, then google-benchmark timings for
// the serial CSR/CSC/dense matvec kernels and format conversions — the
// "computational savings" compressed storage buys (Section 3: "unnecessary
// multiplications and additions with zero are avoided").

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/table.hpp"

namespace sp = hpfcg::sparse;

namespace {

void print_figure1() {
  const auto csr = sp::figure1_matrix();
  const auto csc = sp::csr_to_csc(csr);
  hpfcg::util::Table table(
      "F1 — the CSC trio of Figure 1 (1-based, a_ij = 10i+j)",
      {"k", "a(k)", "row(k)"});
  for (std::size_t k = 0; k < csc.nnz(); ++k) {
    table.add_row({std::to_string(k + 1),
                   hpfcg::util::fmt(csc.values()[k], 4),
                   std::to_string(csc.row_idx()[k] + 1)});
  }
  table.print(std::cout);
  std::cout << "col = [";
  for (std::size_t j = 0; j < csc.col_ptr().size(); ++j) {
    std::cout << (j ? " " : "") << csc.col_ptr()[j] + 1;
  }
  std::cout << "]  (paper: 1 5 9 10 12 14 16)\n";
}

const sp::Csr<double>& test_matrix() {
  static const auto a = sp::laplacian_2d(64, 64);
  return a;
}

void BM_CsrMatvec(benchmark::State& state) {
  const auto& a = test_matrix();
  std::vector<double> p(a.n_cols(), 1.0), q(a.n_rows());
  for (auto _ : state) {
    a.matvec(p, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(a.nnz()));
}
BENCHMARK(BM_CsrMatvec);

void BM_CscMatvec(benchmark::State& state) {
  static const auto csc = sp::csr_to_csc(test_matrix());
  std::vector<double> p(csc.n_cols(), 1.0), q(csc.n_rows());
  for (auto _ : state) {
    csc.matvec(p, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csc.nnz()));
}
BENCHMARK(BM_CscMatvec);

void BM_DenseMatvecSameMatrix(benchmark::State& state) {
  // The dense-storage cost the compressed schemes avoid: n^2 multiply-adds
  // instead of nnz.
  static const auto dense = test_matrix().to_dense();
  const std::size_t n = test_matrix().n_rows();
  std::vector<double> p(n, 1.0), q(n);
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t j = 0; j < n; ++j) acc += dense[i * n + j] * p[j];
      q[i] = acc;
    }
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DenseMatvecSameMatrix);

void BM_CsrToCsc(benchmark::State& state) {
  const auto& a = test_matrix();
  for (auto _ : state) {
    auto csc = sp::csr_to_csc(a);
    benchmark::DoNotOptimize(csc.nnz());
  }
}
BENCHMARK(BM_CsrToCsc);

void BM_Transpose(benchmark::State& state) {
  const auto& a = test_matrix();
  for (auto _ : state) {
    auto at = sp::transpose(a);
    benchmark::DoNotOptimize(at.nnz());
  }
}
BENCHMARK(BM_Transpose);

void print_storage_table() {
  hpfcg::util::Table table(
      "Section 3 — storage cost: dense n^2 vs compressed O(nnz)",
      {"matrix", "n", "nnz", "dense doubles", "CSR words", "ratio"});
  const auto add = [&](const char* name, const sp::Csr<double>& a) {
    const double dense_words = static_cast<double>(a.n_rows()) *
                               static_cast<double>(a.n_cols());
    const double csr_words =
        2.0 * static_cast<double>(a.nnz()) + a.n_rows() + 1;
    table.add_row({name, std::to_string(a.n_rows()),
                   std::to_string(a.nnz()),
                   hpfcg::util::fmt(dense_words, 6),
                   hpfcg::util::fmt(csr_words, 6),
                   hpfcg::util::fmt(dense_words / csr_words, 4)});
  };
  add("laplacian 64x64", test_matrix());
  add("laplacian 16^3", sp::laplacian_3d(16, 16, 16));
  add("random spd 4096", sp::random_spd(4096, 7, 1));
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  print_figure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_storage_table();
  return 0;
}
