// Experiment V3: the hpfcg::race layer must be a pure side channel and a
// cheap one.  Four gates, all enforced by the exit code:
//   1. identity — with detection on (replay off) every Stats counter and
//      modeled time is bit-identical to a detector-free run, per NP;
//   2. overhead — wall-clock ratio on/off for an NP=8 CG-shaped solve stays
//      under 1.10 (best-of-N to shed scheduler noise);
//   3. reproducer — a seeded wildcard-receive race is flagged, naming both
//      racing source ranks;
//   4. replay — N perturbed replays (default 50, --runs) of cg_fused and
//      pcg_fused at NP in {2,4,8} reproduce bit-identical residual
//      histories with zero unflagged divergences.
// --json PATH writes the machine-readable report the CI job uploads.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/race/detector.hpp"
#include "hpfcg/race/race.hpp"
#include "hpfcg/race/replay.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/preconditioner.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"

namespace race = hpfcg::race;
namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Runtime;
using hpfcg::msg::Stats;

namespace {

struct Run {
  Stats total;
  double makespan = 0.0;
  double wall_us = 0.0;
};

/// The CG-shaped sweep the detector instruments most densely: matvec
/// (allgather + shard reads) + fused dot + axpy + barrier per iteration.
void cg_shaped_body(Process& p, std::size_t n, int iters) {
  auto dist = std::make_shared<const Distribution>(
      Distribution::block(n, p.nprocs()));
  const auto a = sp::tridiagonal(n, 2.0, -1.0);
  auto A = sp::DistCsr<double>::row_aligned(p, a, dist);
  A.enable_caching();
  DistributedVector<double> x(p, dist), q(p, dist);
  x.set_from([](std::size_t g) { return static_cast<double>(g % 13); });
  for (int it = 0; it < iters; ++it) {
    A.matvec(x, q);
    const double d = hpfcg::hpf::dot_product(x, q);
    hpfcg::hpf::axpy(1.0 / (1.0 + d), q, x);
    p.barrier();
  }
}

Run measure(int np, bool race_on, std::size_t n = 2048, int iters = 8) {
  race::ScopedEnable mode(race_on);
  const auto t0 = std::chrono::steady_clock::now();
  auto rt = hpfcg_bench::run_machine(
      np, [&](Process& p) { cg_shaped_body(p, n, iters); });
  const auto t1 = std::chrono::steady_clock::now();
  Run r;
  r.total = rt->total_stats();
  r.makespan = rt->modeled_makespan();
  r.wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return r;
}

bool counters_identical(const Stats& a, const Stats& b) {
  return a.messages_sent == b.messages_sent &&
         a.messages_received == b.messages_received &&
         a.bytes_sent == b.bytes_sent &&
         a.bytes_received == b.bytes_received && a.flops == b.flops &&
         a.barriers == b.barriers && a.collectives == b.collectives &&
         a.reductions == b.reductions &&
         a.reduction_values == b.reduction_values &&
         a.envelopes_inline == b.envelopes_inline &&
         // The pooled/heap split is a scheduling-dependent diagnostic
         // (recycle racing the next draw); only the sum is deterministic.
         a.envelopes_pooled + a.envelopes_heap ==
             b.envelopes_pooled + b.envelopes_heap &&
         a.modeled_comm_seconds == b.modeled_comm_seconds &&
         a.modeled_compute_seconds == b.modeled_compute_seconds &&
         a.modeled_wait_seconds == b.modeled_wait_seconds;
}

/// Best-of-N wall time for the overhead gate: the minimum is the least
/// scheduler-polluted estimate of the true cost.
double best_wall_us(int np, bool race_on, int reps) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    const double w = measure(np, race_on, 4096, 10).wall_us;
    if (i == 0 || w < best) best = w;
  }
  return best;
}

/// Seeded wildcard reproducer: two concurrent sends racing for one
/// any-source receive.  Returns the detector's JSON report; `ok` reflects
/// whether exactly the expected race was flagged naming ranks 1 and 2.
std::string wildcard_reproducer(bool& ok) {
  race::ScopedEnable on;
  Runtime rt(3);
  rt.run([](Process& p) {
    if (p.rank() == 1) p.send_value<int>(0, 7, 10);
    if (p.rank() == 2) p.send_value<int>(0, 7, 20);
    if (p.rank() == 0) {
      while (p.runtime().mailbox(0).pending() < 2) {
        std::this_thread::yield();
      }
      race::SiteScope site("bench reproducer recv");
      int src = -1;
      (void)p.recv_any<int>(7, src);
      (void)p.recv_any<int>(7, src);
    }
  });
  const auto records = rt.racer()->records();
  ok = records.size() == 1 &&
       records[0].kind == race::RaceKind::kWildcard &&
       records[0].src_a == 1 && records[0].src_b == 2;
  std::ostringstream os;
  rt.racer()->write_json(os);
  return os.str();
}

struct ReplayRow {
  std::string solver;
  int np = 0;
  race::ReplayReport report;
};

template <class SolveFn>
race::ReplayReport replay_solver(int np, int runs, std::uint64_t base_seed,
                                 const SolveFn& solve) {
  return race::perturbed_replay(runs, base_seed, [&](std::uint64_t seed) {
    race::ScopedEnable on;
    race::ScopedReplaySeed replay(seed);
    Runtime rt(np);
    race::ReplayRun run;
    rt.run([&](Process& p) {
      const std::uint64_t sig = solve(p);
      if (p.rank() == 0) run.signature = sig;
    });
    run.races = rt.racer()->race_count();
    return run;
  });
}

}  // namespace

int main(int argc, char** argv) {
  int runs = 50;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }

  // ---- gate 1: counter identity per NP ---------------------------------
  hpfcg::util::Table table(
      "V3 — hpfcg::race overhead (CG-shaped sweep, n=2048, 8 iterations)",
      {"NP", "mode", "msgs", "bytes", "flops", "modeled[us]", "wall[us]",
       "counters identical?"});
  bool all_identical = true;
  for (const int np : hpfcg_bench::np_sweep()) {
    const Run off = measure(np, false);
    const Run on = measure(np, true);
    const bool same = counters_identical(off.total, on.total);
    all_identical = all_identical && same;
    table.add_row({std::to_string(np), "off",
                   hpfcg::util::fmt_count(off.total.messages_sent),
                   hpfcg::util::fmt_count(off.total.bytes_sent),
                   hpfcg::util::fmt_count(off.total.flops),
                   hpfcg::util::fmt(off.makespan * 1e6, 2),
                   hpfcg::util::fmt(off.wall_us, 0), "-"});
    table.add_row({std::to_string(np), "on",
                   hpfcg::util::fmt_count(on.total.messages_sent),
                   hpfcg::util::fmt_count(on.total.bytes_sent),
                   hpfcg::util::fmt_count(on.total.flops),
                   hpfcg::util::fmt(on.makespan * 1e6, 2),
                   hpfcg::util::fmt(on.wall_us, 0), same ? "yes" : "NO"});
  }
  table.print(std::cout);

  // ---- gate 2: wall overhead at NP=8 -----------------------------------
  double ratio = 1.0;
  bool overhead_ok = true;
  if (race::kCompiled) {
    const double off_us = best_wall_us(8, false, 5);
    const double on_us = best_wall_us(8, true, 5);
    ratio = off_us > 0.0 ? on_us / off_us : 1.0;
    overhead_ok = ratio < 1.10;
    std::cout << "\nNP=8 CG solve wall (best of 5): off "
              << hpfcg::util::fmt(off_us, 0) << " us, on "
              << hpfcg::util::fmt(on_us, 0) << " us, ratio "
              << hpfcg::util::fmt(ratio, 3) << " (gate < 1.10: "
              << (overhead_ok ? "pass" : "FAIL") << ")\n";
  } else {
    std::cout << "\n(race layer compiled out: both modes ran the bare "
                 "runtime — the hooks cost literally nothing)\n";
  }

  // ---- gate 3: seeded wildcard reproducer ------------------------------
  bool reproducer_ok = true;
  std::string reproducer_json = "{}";
  if (race::kCompiled) {
    reproducer_json = wildcard_reproducer(reproducer_ok);
    std::cout << "\nWildcard reproducer (2 concurrent senders, 1 any-source "
                 "receiver): "
              << (reproducer_ok ? "flagged naming ranks 1 and 2"
                                : "NOT FLAGGED — detector bug")
              << "\n";
  }

  // ---- gate 4: perturbed replay of the fused solvers -------------------
  std::vector<ReplayRow> rows;
  bool replay_ok = true;
  if (race::kCompiled && runs > 0) {
    const auto a = sp::laplacian_2d(7, 9);
    const auto b_full = sp::random_rhs(a.n_rows(), 23);
    const auto spd = sp::random_spd(48, 5, 91);
    const auto spd_rhs = sp::random_rhs(spd.n_rows(), 37);
    const auto spd_diag = spd.diagonal();

    hpfcg::util::Table rt_table(
        "Perturbed replay (" + std::to_string(runs) + " adversarial "
        "schedules per cell; solver results must be bit-identical)",
        {"solver", "NP", "identical", "flagged", "unflagged", "verdict"});
    for (const int np : {2, 4, 8}) {
      ReplayRow cg{"cg_fused", np,
                   replay_solver(np, runs, 0x5eedu + np, [&](Process& p) {
                     auto dist = std::make_shared<const Distribution>(
                         Distribution::block(a.n_rows(), p.nprocs()));
                     auto mat = sp::DistCsr<double>::row_aligned(p, a, dist);
                     DistributedVector<double> b(p, dist), x(p, dist);
                     b.from_global(b_full);
                     const sv::DistOp<double> op =
                         [&](const DistributedVector<double>& q,
                             DistributedVector<double>& out) {
                           mat.matvec(q, out);
                         };
                     return sv::cg_fused_dist<double>(
                                op, b, x,
                                {.rel_tolerance = 1e-10,
                                 .track_residuals = true})
                         .residual_signature();
                   })};
      ReplayRow pcg{"pcg_fused", np,
                    replay_solver(np, runs, 0xacedu + np, [&](Process& p) {
                      auto dist = std::make_shared<const Distribution>(
                          Distribution::block(spd.n_rows(), p.nprocs()));
                      auto mat =
                          sp::DistCsr<double>::row_aligned(p, spd, dist);
                      DistributedVector<double> b(p, dist), x(p, dist),
                          inv_diag(p, dist);
                      b.from_global(spd_rhs);
                      inv_diag.set_from(
                          [&](std::size_t g) { return 1.0 / spd_diag[g]; });
                      const sv::DistOp<double> op =
                          [&](const DistributedVector<double>& q,
                              DistributedVector<double>& out) {
                            mat.matvec(q, out);
                          };
                      return sv::pcg_fused_dist<double>(
                                 op, sv::jacobi_dist(inv_diag), b, x,
                                 {.rel_tolerance = 1e-10,
                                  .track_residuals = true})
                          .residual_signature();
                    })};
      for (const auto& row : {cg, pcg}) {
        const bool ok = row.report.deterministic() && row.report.complete();
        replay_ok = replay_ok && ok;
        rt_table.add_row({row.solver, std::to_string(np),
                          std::to_string(row.report.identical),
                          std::to_string(row.report.flagged_divergences),
                          std::to_string(row.report.unflagged_divergences),
                          ok ? "bit-identical" : "FAIL"});
        rows.push_back(row);
      }
    }
    std::cout << '\n';
    rt_table.print(std::cout);
  }

  const bool ok =
      all_identical && overhead_ok && reproducer_ok && replay_ok;

  if (!json_path.empty()) {
    std::ofstream js(json_path);
    js << "{\"identity_ok\": " << (all_identical ? "true" : "false")
       << ", \"overhead_ratio\": " << ratio
       << ", \"overhead_ok\": " << (overhead_ok ? "true" : "false")
       << ", \"reproducer_ok\": " << (reproducer_ok ? "true" : "false")
       << ", \"reproducer\": " << reproducer_json << ", \"replay\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) js << ", ";
      js << "{\"solver\": \"" << rows[i].solver
         << "\", \"np\": " << rows[i].np
         << ", \"runs\": " << rows[i].report.perturbed.size()
         << ", \"identical\": " << rows[i].report.identical
         << ", \"flagged\": " << rows[i].report.flagged_divergences
         << ", \"unflagged\": " << rows[i].report.unflagged_divergences
         << "}";
    }
    js << "], \"ok\": " << (ok ? "true" : "false") << "}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }

  std::cout << "\nReading: the detector is a side channel (counters and\n"
               "modeled times bit-identical), its wall cost at NP=8 is\n"
               "under the 10% gate, the seeded wildcard race is flagged\n"
               "with both source ranks named, and every adversarial\n"
               "delivery schedule reproduced the solvers' residual\n"
               "histories bit-for-bit.\n";
  return ok ? 0 : 1;
}
