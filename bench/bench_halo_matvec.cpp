// Experiment HX — halo-exchange matvec vs the O(n) gather.
//
// The legacy executor replicates the whole operand vector before every
// sweep: an allgatherv whose per-sweep bill grows with n no matter how
// sparse the coupling is.  The inspector/executor halo plan ships only the
// boundary entries a neighbor actually reads,
//
//   t_halo ≈ (t_startup + t_hop) · neighbors + t_comm · 8 · boundary
//
// per rank, so for a stencil matrix the per-sweep traffic drops from
// O(n) to O(boundary).  This bench measures the steady-state marginal
// bytes per sweep in both modes on 2-D and 3-D Laplacians, checks the
// residual histories of the fused CG stay bit-identical when the halo
// path replaces the gather, and runs a mid-solve REDISTRIBUTE sweep to
// show the plan invalidate/rebuild leaves the answer untouched.
//
// Exit status is the CI gate: nonzero if the halo path saves less than
// 5x marginal bytes per sweep at NP in {4,8,16}, if any residual history
// differs from the gather path's at NP in {1,2,4,8}, or if the
// rebalance-hook solve diverges between the two modes.
//
//   ./bench_halo_matvec [--json out.json]

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/msg/cost_model.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/halo.hpp"
#include "hpfcg/util/cli.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Stats;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

double pval(std::size_t g) { return 0.1 * static_cast<double>(g % 13) - 0.5; }

/// Machine-wide bytes_sent after `sweeps` matvecs (plus the one-time build
/// and, on the halo path, the inspector's index exchange).
std::uint64_t bytes_for(const sp::Csr<double>& a, int np, bool halo,
                        int sweeps) {
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    sp::halo::ScopedEnable mode(halo);
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from(pval);
    for (int s = 0; s < sweeps; ++s) mat.matvec(p, q);
  });
  Stats total;
  for (int r = 0; r < np; ++r) total += rt->stats(r);
  return total.bytes_sent;
}

struct SweepRow {
  std::string matrix;
  int np = 0;
  std::uint64_t gather_bpi = 0;  ///< marginal bytes per sweep, gather mode
  std::uint64_t halo_bpi = 0;    ///< marginal bytes per sweep, halo mode
  std::size_t ghosts = 0;        ///< machine-wide ghost entries
  std::size_t neighbors = 0;     ///< max over ranks of send peers
  double model_us = 0.0;         ///< max-rank modeled forward exchange
};

SweepRow measure_sweep(const std::string& name, const sp::Csr<double>& a,
                       int np) {
  SweepRow row;
  row.matrix = name;
  row.np = np;
  // Marginal cost of sweeps 2..5: the one-time build, caching fetch, and
  // halo-inspector traffic all cancel in the difference.
  row.gather_bpi = (bytes_for(a, np, false, 5) - bytes_for(a, np, false, 1)) / 4;
  row.halo_bpi = (bytes_for(a, np, true, 5) - bytes_for(a, np, true, 1)) / 4;

  std::atomic<std::size_t> ghosts{0};
  std::vector<std::size_t> peers(static_cast<std::size_t>(np), 0);
  std::vector<double> model(static_cast<std::size_t>(np), 0.0);
  const hpfcg::msg::CostParams params;
  const hpfcg::msg::CostModel cm(params, hpfcg::msg::Topology::kHypercube,
                                 np);
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    sp::halo::ScopedEnable mode(true);
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    mat.prepare_halo();
    const auto& plan = mat.halo_plan();
    ghosts += plan.n_ghosts();
    const auto r = static_cast<std::size_t>(proc.rank());
    peers[r] = plan.send_neighbors();
    model[r] = plan.modeled_exchange_seconds(cm, sizeof(double));
  });
  row.ghosts = ghosts.load();
  row.neighbors = *std::max_element(peers.begin(), peers.end());
  row.model_us = *std::max_element(model.begin(), model.end()) * 1e6;
  return row;
}

/// Residual signature + iteration count of one cg_fused_dist solve.
std::pair<std::uint64_t, std::size_t> fused_signature(
    const sp::Csr<double>& a, int np, bool halo) {
  const auto b_full = sp::random_rhs(a.n_rows(), 4242);
  std::atomic<std::uint64_t> sig{0};
  std::atomic<std::size_t> iters{0};
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    sp::halo::ScopedEnable mode(halo);
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::cg_fused_dist<double>(
        op, b, x, {.rel_tolerance = 1e-10, .track_residuals = true});
    if (proc.rank() == 0) {
      sig = res.residual_signature();
      iters = res.iterations;
    }
  });
  return {sig.load(), iters.load()};
}

/// Residual signature of cg_dist with the measured rebalance hook firing
/// every `every` iterations — the mid-solve REDISTRIBUTE drops the plan
/// and prepare_halo() rebuilds it against the new cuts.
std::pair<std::uint64_t, std::size_t> rebalance_signature(
    const sp::Csr<double>& a, int np, bool halo, std::size_t every) {
  const auto b_full = sp::random_rhs(a.n_rows(), 777);
  std::atomic<std::uint64_t> sig{0};
  std::atomic<std::size_t> iters{0};
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    sp::halo::ScopedEnable mode(halo);
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto hook = sv::make_csr_rebalancer<double>(mat);
    const auto res = sv::cg_dist<double>(
        op, b, x,
        {.rel_tolerance = 1e-10, .track_residuals = true,
         .rebalance_every = every},
        hook);
    if (proc.rank() == 0) {
      sig = res.residual_signature();
      iters = res.iterations;
    }
  });
  return {sig.load(), iters.load()};
}

void append_json(std::ostringstream& os, const SweepRow& r, bool first) {
  if (!first) os << ",\n";
  os << "  {\"matrix\": \"" << r.matrix << "\", \"np\": " << r.np
     << ", \"gather_bytes_per_sweep\": " << r.gather_bpi
     << ", \"halo_bytes_per_sweep\": " << r.halo_bpi
     << ", \"ghost_entries\": " << r.ghosts
     << ", \"max_send_neighbors\": " << r.neighbors
     << ", \"model_us\": " << r.model_us << "}";
}

}  // namespace

int main(int argc, char** argv) {
  hpfcg::util::Cli cli(argc, argv);
  const std::string json_path =
      cli.get("json", "", "write rows as JSON to this path");
  if (cli.help_requested()) {
    std::cout << cli.help_text("bench_halo_matvec");
    return 0;
  }
  cli.finish();

  bool ok = true;

  // ---- HX1: marginal bytes per sweep, gather vs halo --------------------
  const auto lap2d = sp::laplacian_2d(64, 64);    // n = 4096, 5-point
  const auto lap3d = sp::laplacian_3d(16, 16, 16);  // n = 4096, 7-point
  hpfcg::util::Table sweep_table(
      "HX1 — steady-state matvec traffic (marginal machine bytes per "
      "sweep): O(n) gather vs O(boundary) halo exchange",
      {"matrix", "NP", "gather[B]", "halo[B]", "save", "ghosts",
       "max nbrs", "model[us]"});
  std::vector<SweepRow> rows;
  for (const auto* which : {"lap2d-64x64", "lap3d-16^3"}) {
    const auto& a = (which == std::string("lap2d-64x64")) ? lap2d : lap3d;
    for (const int np : {4, 8, 16}) {
      const SweepRow row = measure_sweep(which, a, np);
      rows.push_back(row);
      const double save =
          row.halo_bpi == 0
              ? 0.0
              : static_cast<double>(row.gather_bpi) /
                    static_cast<double>(row.halo_bpi);
      sweep_table.add_row(
          {row.matrix, std::to_string(np), std::to_string(row.gather_bpi),
           std::to_string(row.halo_bpi),
           hpfcg::util::fmt(save, 3) + "x", std::to_string(row.ghosts),
           std::to_string(row.neighbors),
           hpfcg::util::fmt(row.model_us, 2)});
      // Gate 1: the executor must save at least 5x per-sweep traffic.
      if (row.halo_bpi == 0 || save < 5.0) {
        std::cerr << row.matrix << " NP=" << np << ": halo saves only "
                  << save << "x (gather " << row.gather_bpi << "B, halo "
                  << row.halo_bpi << "B per sweep)\n";
        ok = false;
      }
    }
  }
  sweep_table.print(std::cout);

  // ---- HX2: the fused CG must not notice the executor swap --------------
  hpfcg::util::Table ident_table(
      "HX2 — cg_fused residual history, halo vs gather (lap2d 24x24): the "
      "forward executor keeps the per-row summation order, so histories "
      "are bit-identical",
      {"NP", "iters", "signature(gather)", "signature(halo)", "identical"});
  const auto small = sp::laplacian_2d(24, 24);
  for (const int np : {1, 2, 4, 8}) {
    const auto [gs, gi] = fused_signature(small, np, false);
    const auto [hs, hi] = fused_signature(small, np, true);
    const bool same = gs == hs && gi == hi;
    ident_table.add_row({std::to_string(np), std::to_string(gi),
                         std::to_string(gs), std::to_string(hs),
                         same ? "yes" : "NO"});
    // Gate 2: bit-identical residual history and iteration count.
    if (!same) {
      std::cerr << "NP=" << np << ": halo residual history diverged from "
                   "the gather path\n";
      ok = false;
    }
  }
  ident_table.print(std::cout);

  // ---- HX3: mid-solve REDISTRIBUTE drops and rebuilds the plan ----------
  hpfcg::util::Table rebal_table(
      "HX3 — cg_dist with the rebalance hook every 10 iterations "
      "(power-law n=512, skewed): the migrated matrix rebuilds its plan "
      "and the answer never moves",
      {"NP", "iters", "signature(gather)", "signature(halo)", "identical"});
  const auto skew = sp::powerlaw_spd(512, 4, 8, 96, 31);
  for (const int np : {2, 4, 8}) {
    const auto [gs, gi] = rebalance_signature(skew, np, false, 10);
    const auto [hs, hi] = rebalance_signature(skew, np, true, 10);
    const bool same = gs == hs && gi == hi;
    rebal_table.add_row({std::to_string(np), std::to_string(gi),
                         std::to_string(gs), std::to_string(hs),
                         same ? "yes" : "NO"});
    // Gate 3: the invalidate/rebuild cycle must be answer-preserving.
    if (!same) {
      std::cerr << "NP=" << np << ": rebalance-hook solve diverged "
                   "between halo and gather modes\n";
      ok = false;
    }
  }
  rebal_table.print(std::cout);

  std::cout << "\nReading: the inspector pays one index exchange at setup;\n"
               "every sweep after that ships only boundary entries to the\n"
               "handful of ranks that read them — 5-50x less traffic than\n"
               "replicating the operand vector, with residual histories\n"
               "bit-identical to the gather executor, even across a\n"
               "mid-solve REDISTRIBUTE.\n";

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      append_json(os, rows[i], i == 0);
    }
    os << "\n]\n";
    std::ofstream out(json_path);
    out << os.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
