#pragma once
// Shared helpers for the benchmark binaries.
//
// Every bench binary regenerates one of the paper's figures/analyses as an
// ASCII table (model vs. measurement).  Binaries run with no arguments and
// finish in seconds; all inputs are synthetic and seeded.

#include <functional>
#include <memory>
#include <vector>

#include "hpfcg/msg/process.hpp"
#include "hpfcg/msg/runtime.hpp"
#include "hpfcg/util/table.hpp"

namespace hpfcg_bench {

/// Machine sizes the tables sweep.
inline const std::vector<int>& np_sweep() {
  static const std::vector<int> sizes{1, 2, 4, 8, 16};
  return sizes;
}

/// Build a machine, run the SPMD body, return the runtime for inspection.
inline std::unique_ptr<hpfcg::msg::Runtime> run_machine(
    int np, const std::function<void(hpfcg::msg::Process&)>& body,
    hpfcg::msg::CostParams params = {},
    hpfcg::msg::Topology topo = hpfcg::msg::Topology::kHypercube) {
  auto rt = std::make_unique<hpfcg::msg::Runtime>(np, params, topo);
  rt->run(body);
  return rt;
}

/// Max modeled wait over ranks (serialization indicator).
inline double max_wait(const hpfcg::msg::Runtime& rt) {
  double w = 0.0;
  for (int r = 0; r < rt.nprocs(); ++r) {
    w = std::max(w, rt.stats(r).modeled_wait_seconds);
  }
  return w;
}

}  // namespace hpfcg_bench
