// Experiment TR1: the hpfcg::trace layer must be a pure side channel — with
// tracing runtime-disabled the hooks cost one null-pointer branch per site,
// and with tracing enabled every Stats counter (messages, bytes, flops,
// envelope paths, modeled times) must be bit-identical to the untraced run,
// since spans never travel through the simulated network.
// Table: counters and wall time per NP, tracing off vs on.
//
// The final WALL_US_TRACING_DISABLED line is machine-parseable: CI runs
// this binary from a build with HPFCG_TRACE=ON and one with =OFF and gates
// the compiled-in-but-disabled hooks at <5% wall overhead.

#include <chrono>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/trace/trace.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Stats;

namespace {

struct Run {
  Stats total;
  double makespan = 0.0;
  double wall_us = 0.0;
  std::uint64_t spans = 0;
};

/// The same CG-shaped workload as bench_check_overhead: repeated matvec +
/// dot + axpy sweeps, the loop the tracer instruments most densely.
Run measure(int np, bool trace_on) {
  hpfcg::trace::ScopedEnable mode(trace_on);
  const std::size_t n = 2048;
  const int iters = 8;
  const auto t0 = std::chrono::steady_clock::now();
  auto rt = hpfcg_bench::run_machine(np, [&](Process& p) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, p.nprocs()));
    const auto a = hpfcg::sparse::tridiagonal(n, 2.0, -1.0);
    auto A = hpfcg::sparse::DistCsr<double>::row_aligned(p, a, dist);
    A.enable_caching();
    DistributedVector<double> x(p, dist), q(p, dist);
    x.set_from([](std::size_t g) { return static_cast<double>(g % 13); });
    for (int it = 0; it < iters; ++it) {
      A.matvec(x, q);
      const double d = hpfcg::hpf::dot_product(x, q);
      hpfcg::hpf::axpy(1.0 / (1.0 + d), q, x);
      p.barrier();
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  Run r;
  r.total = rt->total_stats();
  r.makespan = rt->modeled_makespan();
  r.wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  if (rt->tracer() != nullptr) r.spans = rt->tracer()->total_recorded();
  return r;
}

bool counters_identical(const Stats& a, const Stats& b) {
  return a.messages_sent == b.messages_sent &&
         a.messages_received == b.messages_received &&
         a.bytes_sent == b.bytes_sent &&
         a.bytes_received == b.bytes_received && a.flops == b.flops &&
         a.barriers == b.barriers && a.collectives == b.collectives &&
         a.reductions == b.reductions &&
         a.reduction_values == b.reduction_values &&
         a.envelopes_inline == b.envelopes_inline &&
         // The pooled/heap split depends on whether a recycled buffer beat
         // the next large send back to the pool — scheduling, not
         // semantics — so only the sum is required to match.
         a.envelopes_pooled + a.envelopes_heap ==
             b.envelopes_pooled + b.envelopes_heap &&
         a.modeled_comm_seconds == b.modeled_comm_seconds &&
         a.modeled_compute_seconds == b.modeled_compute_seconds &&
         a.modeled_wait_seconds == b.modeled_wait_seconds;
}

}  // namespace

int main() {
  hpfcg::util::Table table(
      "TR1 — hpfcg::trace overhead (CG-shaped sweep, n=2048, 8 iterations)",
      {"NP", "mode", "msgs", "bytes", "flops", "spans", "modeled[us]",
       "wall[us]", "counters identical?"});
  bool all_identical = true;
  double disabled_wall_us = 0.0;
  for (const int np : hpfcg_bench::np_sweep()) {
    const Run off = measure(np, false);
    const Run on = measure(np, true);
    const bool same = counters_identical(off.total, on.total);
    all_identical = all_identical && same;
    disabled_wall_us += off.wall_us;
    table.add_row({std::to_string(np), "off",
                   hpfcg::util::fmt_count(off.total.messages_sent),
                   hpfcg::util::fmt_count(off.total.bytes_sent),
                   hpfcg::util::fmt_count(off.total.flops),
                   hpfcg::util::fmt_count(off.spans),
                   hpfcg::util::fmt(off.makespan * 1e6, 2),
                   hpfcg::util::fmt(off.wall_us, 0), "-"});
    table.add_row({std::to_string(np), "on",
                   hpfcg::util::fmt_count(on.total.messages_sent),
                   hpfcg::util::fmt_count(on.total.bytes_sent),
                   hpfcg::util::fmt_count(on.total.flops),
                   hpfcg::util::fmt_count(on.spans),
                   hpfcg::util::fmt(on.makespan * 1e6, 2),
                   hpfcg::util::fmt(on.wall_us, 0), same ? "yes" : "NO"});
  }
  table.print(std::cout);
  if (!hpfcg::trace::kCompiled) {
    std::cout << "\n(tracing compiled out: both modes ran the bare runtime "
                 "— the hooks cost literally nothing)\n";
  }
  std::cout << "\nReading: every counter and modeled time matches between\n"
               "the traced and untraced runs — the tracer is a side channel,\n"
               "not a participant.  The off-mode wall time is what a build\n"
               "without the subsystem would measure, modulo one null-pointer\n"
               "branch per hook site.\n";
  std::cout << "\nWALL_US_TRACING_DISABLED " << disabled_wall_us << "\n";
  return all_identical ? 0 : 1;
}
