// Experiment A4 (Section 5.2.1): flat HPF-1 BLOCK over the nnz arrays vs
// the proposed ATOM:BLOCK distribution.
//
// With `DISTRIBUTE col(BLOCK)` the cut points ignore row boundaries, so
// rows straddling a cut must fetch their missing (col, a) elements every
// sweep — the paper's "additional communication ... to bring in those
// missing elements".  ATOM:BLOCK moves the cuts to row boundaries and the
// fetches disappear; the SPARSE_MATRIX descriptor alternatively lets the
// fetched entries be cached.

#include <atomic>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/ext/atom_partition.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;

int main() {
  // Wide spread of row lengths makes the misalignment visible.
  const auto a = hpfcg::sparse::powerlaw_spd(1200, 4, 8, 120, 61);
  const std::size_t n = a.n_rows();
  const int sweeps = 10;

  hpfcg::util::Table table(
      "A4 — nnz-array distribution vs ATOM:BLOCK (" + std::to_string(sweeps) +
          " matvec sweeps, powerlaw matrix n=" + std::to_string(n) +
          ", nnz=" + std::to_string(a.nnz()) + ")",
      {"nnz distribution", "NP", "split rows", "remote nnz/sweep",
       "extra bytes total", "modeled[ms]", "wall[ms]"});

  enum class Mode { kFlat, kFlatCached, kAtom };
  for (const int np : {2, 4, 8, 16}) {
    // Baseline bytes: the aligned variant's traffic (pure p-broadcasts).
    unsigned long long aligned_bytes = 0;

    for (const auto mode : {Mode::kAtom, Mode::kFlat, Mode::kFlatCached}) {
      std::atomic<std::size_t> remote{0};
      hpfcg::util::Timer wall;
      auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto row_dist =
            std::make_shared<const Distribution>(Distribution::block(n, np));
        auto mat = [&] {
          if (mode == Mode::kAtom) {
            return hpfcg::sparse::DistCsr<double>::row_aligned(proc, a,
                                                               row_dist);
          }
          auto nnz_dist = std::make_shared<const Distribution>(
              Distribution::block(a.nnz(), np));
          return hpfcg::sparse::DistCsr<double>(proc, a, row_dist, nnz_dist);
        }();
        if (mode == Mode::kFlatCached) mat.enable_caching();
        DistributedVector<double> p(proc, row_dist), q(proc, row_dist);
        p.set_from([](std::size_t g) { return static_cast<double>(g % 3); });
        for (int s = 0; s < sweeps; ++s) mat.matvec(p, q);
        remote += mat.remote_nnz();
      });
      if (mode == Mode::kAtom) aligned_bytes = rt->total_stats().bytes_sent;

      const auto flat_nnz = Distribution::block(a.nnz(), np);
      const std::size_t splits =
          mode == Mode::kAtom
              ? 0
              : hpfcg::ext::count_split_atoms(a.row_ptr(), flat_nnz);
      static const char* names[] = {"HPF-1 BLOCK (per sweep fetch)",
                                    "HPF-1 BLOCK + descriptor cache",
                                    "ATOM:BLOCK (proposed)"};
      const char* name = mode == Mode::kFlat
                             ? names[0]
                             : (mode == Mode::kFlatCached ? names[1]
                                                          : names[2]);
      const unsigned long long extra =
          rt->total_stats().bytes_sent - aligned_bytes;
      table.add_row({name, std::to_string(np), std::to_string(splits),
                     hpfcg::util::fmt_count(remote.load()),
                     hpfcg::util::fmt_count(extra),
                     hpfcg::util::fmt(rt->modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt(wall.millis(), 4)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the flat BLOCK distribution splits rows at every cut\n"
         "and pays remote-nnz fetches each sweep; the descriptor's cache\n"
         "pays them once; ATOM:BLOCK never pays them, at the cost of one\n"
         "replicated NP+1-entry cut array — the Section 5.2.1 proposal.\n";
  return 0;
}
