// Experiment MG — the HPCG-class workload: geometric multigrid
// preconditioned CG on the 27-point stencil.
//
// HPCG's shape on this runtime: generate the 3-D 27-point operator,
// coarsen it geometrically (halve every even extent), smooth with
// symmetric Gauss-Seidel on every level, and precondition CG with one
// V(1,1) cycle.  The benchmark mirrors HPCG's structure — a validation
// phase first, then the timed solve — and reports GFLOP/s from the
// runtime's flop counters next to the modeled communication/compute/wait
// split.
//
// Exit status is the CI gate: nonzero if
//   HG1  a validation probe fails: operator symmetry (v·(Aw) == (Av)·w on
//        random probes, every level), preconditioner symmetry
//        (r1·(M r2) == r2·(M r1) for the V-cycle with both smoothers), or
//        MG-PCG fails to converge;
//   HG2  MG-PCG needs more than 1/3 the Jacobi-PCG iterations at any
//        NP in {1, 4, 8} (the convergence-rate bar that justifies the
//        hierarchy);
//   HG3  under HPFCG_REPRO the MG-PCG residual history is not
//        bit-identical across NP in {1, 2, 4, 8} — including a run whose
//        mid-solve rebalance migrates the cached level hierarchy.
// --json PATH writes the machine-readable report the CI job uploads.

#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/multigrid.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"

namespace repro = hpfcg::repro;
namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Stats;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

struct Solve {
  std::uint64_t signature = 0;
  std::size_t iterations = 0;
  bool converged = false;
  Stats total;
  double wall_us = 0.0;
  std::size_t levels = 0;
};

/// One MG-PCG (mg == true) or Jacobi-PCG solve of the stencil system.
/// A nonzero rebalance cadence wires migrate_fine() into the hook so a
/// migration carries the cached hierarchy along.
Solve run_pcg(std::array<std::size_t, 3> dims,
              const std::vector<double>& b_full, int np, bool mg,
              std::size_t rebalance_every, const sv::MgOptions& mg_opts) {
  const auto a = sp::stencil27_3d(dims[0], dims[1], dims[2]);
  Solve out;
  const auto t0 = std::chrono::steady_clock::now();
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    mat.enable_caching();
    mat.prepare_halo();
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const sv::SolveOptions opts{.max_iterations = 500,
                                .rel_tolerance = 1e-9,
                                .track_residuals = true,
                                .rebalance_every = rebalance_every};
    sv::SolveResult res;
    if (mg) {
      sv::MgPreconditioner prec(proc, mat, dims, mg_opts);
      const auto hook = sv::make_csr_rebalancer<double>(
          mat,
          [&](const hpfcg::hpf::DistPtr& nd) { prec.migrate_fine(nd); });
      res = sv::pcg_dist<double>(
          op, prec.prec(), b, x, opts,
          rebalance_every == 0 ? sv::RebalanceHook{} : hook);
      if (proc.rank() == 0) out.levels = prec.n_levels();
    } else {
      DistributedVector<double> inv_diag(proc, dist);
      inv_diag.set_from([&](std::size_t g) { return 1.0 / a.at(g, g); });
      res = sv::pcg_dist<double>(op, sv::jacobi_dist<double>(inv_diag), b,
                                 x, opts);
    }
    if (proc.rank() == 0) {
      out.signature = res.residual_signature();
      out.iterations = res.iterations;
      out.converged = res.converged;
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  out.total = rt->total_stats();
  out.wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return out;
}

/// HPCG-style validation: symmetry probes for the operator on every level
/// of the hierarchy and self-adjointness of the whole V-cycle, both
/// smoothers.  Returns false (and prints why) on any failed probe.
bool validate(std::array<std::size_t, 3> dims, int np) {
  const auto a = sp::stencil27_3d(dims[0], dims[1], dims[2]);
  const std::size_t n = a.n_rows();
  bool ok = true;
  for (const auto smoother :
       {sv::MgSmoother::kExactSymGs, sv::MgSmoother::kHybridSymGs}) {
    auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
      auto dist = share(Distribution::block(n, proc.nprocs()));
      auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
      mat.prepare_halo();
      sv::MgPreconditioner mg(proc, mat, dims, {.smoother = smoother});

      // Operator symmetry, every level: v·(Aw) == (Av)·w on random probes.
      for (std::size_t l = 0; l < mg.n_levels(); ++l) {
        auto& al = const_cast<sp::DistCsr<double>&>(mg.level_op(l));
        const auto ld = al.row_dist_ptr();
        DistributedVector<double> v(proc, ld), w(proc, ld), av(proc, ld),
            aw(proc, ld);
        for (int probe = 0; probe < 3; ++probe) {
          const auto vf = sp::random_rhs(al.n(), 910 + 2 * probe);
          const auto wf = sp::random_rhs(al.n(), 911 + 2 * probe);
          v.from_global(vf);
          w.from_global(wf);
          al.matvec(v, av);
          al.matvec(w, aw);
          const double vaw = hpfcg::hpf::dot_product(v, aw);
          const double avw = hpfcg::hpf::dot_product(av, w);
          const double scale = std::abs(vaw) + std::abs(avw) + 1.0;
          if (std::abs(vaw - avw) > 1e-10 * scale) {
            if (proc.rank() == 0) {
              std::cerr << "HG1: level " << l << " operator asymmetric: "
                        << vaw << " vs " << avw << "\n";
            }
            ok = false;
          }
        }
      }

      // Preconditioner symmetry: r1·(M r2) == r2·(M r1).
      const auto fd = mat.row_dist_ptr();
      DistributedVector<double> r1(proc, fd), r2(proc, fd), z1(proc, fd),
          z2(proc, fd);
      for (int probe = 0; probe < 3; ++probe) {
        r1.from_global(sp::random_rhs(n, 920 + 2 * probe));
        r2.from_global(sp::random_rhs(n, 921 + 2 * probe));
        mg.apply(r1, z1);
        mg.apply(r2, z2);
        const double d12 = hpfcg::hpf::dot_product(r1, z2);
        const double d21 = hpfcg::hpf::dot_product(r2, z1);
        const double scale = std::abs(d12) + std::abs(d21) + 1.0;
        if (std::abs(d12 - d21) > 1e-9 * scale) {
          if (proc.rank() == 0) {
            std::cerr << "HG1: V-cycle ("
                      << (mg.exact_smoother() ? "exact" : "hybrid")
                      << " symGS) not self-adjoint: " << d12 << " vs "
                      << d21 << "\n";
          }
          ok = false;
        }
      }
    });
  }
  return ok;
}

double gflops(const Solve& s) {
  return s.wall_us > 0.0
             ? static_cast<double>(s.total.flops) / (s.wall_us * 1e3)
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  hpfcg::util::Cli cli(argc, argv);
  const std::string json_path =
      cli.get("json", "", "write the gate report as JSON to this path");
  const std::size_t nx =
      std::stoul(cli.get("nx", "32", "grid extent in x (even for coarsening)"));
  const std::size_t ny = std::stoul(cli.get("ny", "16", "grid extent in y"));
  const std::size_t nz = std::stoul(cli.get("nz", "16", "grid extent in z"));
  if (cli.help_requested()) {
    std::cout << cli.help_text("bench_hpcg");
    return 0;
  }
  cli.finish();

  const std::array<std::size_t, 3> dims{nx, ny, nz};
  const std::size_t n = nx * ny * nz;
  const auto b_full = sp::random_rhs(n, 2026);
  bool ok = true;

  // ---- HG1: validation phase -------------------------------------------
  bool valid = true;
  for (const int np : {1, 4}) valid = validate(dims, np) && valid;
  std::cout << "HG1 — validation (operator symmetry on every level, "
               "V-cycle self-adjointness, both smoothers, NP in {1,4}): "
            << (valid ? "pass" : "FAIL") << "\n\n";
  if (!valid) ok = false;

  // ---- HG2: convergence rate vs Jacobi-PCG ------------------------------
  hpfcg::util::Table conv_table(
      "HG2 — MG-PCG vs Jacobi-PCG on the " + std::to_string(nx) + "x" +
          std::to_string(ny) + "x" + std::to_string(nz) +
          " 27-point system (rel tol 1e-9): the V-cycle must cut the "
          "iteration count to 1/3 or better",
      {"NP", "prec", "levels", "iters", "GFLOP/s", "modeled comm s",
       "modeled compute s", "modeled wait s"});
  std::vector<std::pair<int, std::array<std::size_t, 3>>> conv_rows;
  for (const int np : {1, 4, 8}) {
    // The exact pipelined symGS is the gated configuration: its iterate
    // trajectory is partition-invariant, so the bar means the same thing
    // at every NP.  The hybrid smoother rides along for comparison — its
    // boundary couplings relax Jacobi-style, so its count drifts up with
    // the rank count.
    const Solve mg = run_pcg(dims, b_full, np, true, 0,
                             {.smoother = sv::MgSmoother::kExactSymGs});
    const Solve hyb = run_pcg(dims, b_full, np, true, 0,
                              {.smoother = sv::MgSmoother::kHybridSymGs});
    const Solve jac = run_pcg(dims, b_full, np, false, 0, {});
    if (!mg.converged || !hyb.converged || !jac.converged) {
      std::cerr << "HG2: a solve failed to converge at NP=" << np << "\n";
      ok = false;
    }
    const auto add = [&](const char* name, const Solve& s,
                         bool has_levels) {
      conv_table.add_row(
          {std::to_string(np), name,
           has_levels ? std::to_string(s.levels) : "-",
           std::to_string(s.iterations), hpfcg::util::fmt(gflops(s), 3),
           hpfcg::util::fmt(s.total.modeled_comm_seconds, 6),
           hpfcg::util::fmt(s.total.modeled_compute_seconds, 6),
           hpfcg::util::fmt(s.total.modeled_wait_seconds, 6)});
    };
    add("mg exact", mg, true);
    add("mg hybrid", hyb, true);
    add("jacobi", jac, false);
    conv_rows.push_back({np, {mg.iterations, hyb.iterations,
                              jac.iterations}});
    if (3 * mg.iterations > jac.iterations) {
      std::cerr << "HG2: NP=" << np << " MG-PCG took " << mg.iterations
                << " iterations, more than 1/3 of Jacobi-PCG's "
                << jac.iterations << "\n";
      ok = false;
    }
  }
  conv_table.print(std::cout);

  // ---- HG3: NP-invariance under HPFCG_REPRO -----------------------------
  std::vector<std::array<std::uint64_t, 2>> repro_rows;
  bool repro_ok = true;
  if (repro::kCompiled) {
    hpfcg::util::Table np_table(
        "HG3 — repro-mode MG-PCG residual histories (exact symGS smoother "
        "via kAuto): every NP must round to the same bits as NP=1, "
        "including the NP=4 run whose rebalance migrates the hierarchy "
        "every 3 iterations",
        {"NP", "rebalance", "iters", "signature", "identical"});
    repro::ScopedEnable on;
    const Solve ref = run_pcg(dims, b_full, 1, true, 0, {});
    np_table.add_row({"1", "never", std::to_string(ref.iterations),
                      std::to_string(ref.signature), "ref"});
    const std::pair<int, std::size_t> cells[] = {
        {2, 0}, {4, 0}, {8, 0}, {4, 3}, {8, 5}};
    for (const auto& [np, every] : cells) {
      const Solve s = run_pcg(dims, b_full, np, true, every, {});
      const bool same =
          s.signature == ref.signature && s.iterations == ref.iterations;
      np_table.add_row({std::to_string(np),
                        every == 0 ? "never" : "every " +
                                                   std::to_string(every),
                        std::to_string(s.iterations),
                        std::to_string(s.signature), same ? "yes" : "NO"});
      if (!same) {
        std::cerr << "HG3: NP=" << np << " (rebalance "
                  << (every == 0 ? "off" : "on") << ") drifted from NP=1\n";
        repro_ok = false;
      }
      repro_rows.push_back({static_cast<std::uint64_t>(np), s.signature});
    }
    np_table.print(std::cout);
    if (!repro_ok) ok = false;
  } else {
    std::cout << "\n(HG3 skipped: HPFCG_REPRO compiled out)\n";
  }

  std::cout << "\nReading: one V(1,1) cycle of 27-point geometric multigrid\n"
               "per CG iteration trades ~4x the flops per iteration for a\n"
               "several-fold cut in iterations, and the pipelined exact\n"
               "symGS smoother keeps the whole trajectory NP-invariant bit\n"
               "for bit under HPFCG_REPRO — even when a mid-solve rebalance\n"
               "migrates the cached hierarchy.\n";

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"n\": " << n << ", \"valid\": " << (valid ? "true" : "false")
       << ", \"repro_ok\": " << (repro_ok ? "true" : "false")
       << ", \"cells\": [";
    for (std::size_t i = 0; i < conv_rows.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"np\": " << conv_rows[i].first
         << ", \"mg_iters\": " << conv_rows[i].second[0]
         << ", \"mg_hybrid_iters\": " << conv_rows[i].second[1]
         << ", \"jacobi_iters\": " << conv_rows[i].second[2] << "}";
    }
    os << "], \"ok\": " << (ok ? "true" : "false") << "}\n";
    std::ofstream out(json_path);
    out << os.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      ok = false;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
