// Ablation B4: inspector/executor cost and communication-schedule reuse.
//
// Section 5.1: "Inspector-executor mechanisms [15] which are costly in
// nature should be employed for the determination of the owner of the lhs"
// — the paper proposes ON PROCESSOR to avoid them, and cites schedule
// reuse [20] as the standard mitigation.  This bench measures all three
// regimes on an irregular gather:
//
//   re-inspect    — inspector before every sweep (what a naive compiler
//                   emits for a FORALL with runtime indirection);
//   schedule reuse — one inspector, many executors (Ponnusamy et al.);
//   ON PROCESSOR  — indirection vanishes because the iteration mapping is
//                   declared: here, the special case where the index map
//                   is the identity on the owning rank (no communication).

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/ext/inspector.hpp"
#include "hpfcg/ext/on_processor.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::ext::GatherSchedule;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;

int main() {
  const std::size_t n = 8192;
  const int sweeps = 20;

  hpfcg::util::Table table(
      "B4 — irregular gather result(i) = x(p(i)): inspector cost and reuse "
      "(" + std::to_string(sweeps) + " sweeps, n=" + std::to_string(n) + ")",
      {"regime", "NP", "bytes total", "msgs total", "modeled[ms]",
       "wall[ms]"});

  for (const int np : {4, 16}) {
    enum class Regime { kReinspect, kReuse, kLocalMapped };
    for (const auto regime :
         {Regime::kReinspect, Regime::kReuse, Regime::kLocalMapped}) {
      hpfcg::util::Timer wall;
      auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto dist = std::make_shared<const Distribution>(
            Distribution::block(n, np));
        DistributedVector<double> x(proc, dist), result(proc, dist);
        DistributedVector<std::size_t> idx(proc, dist);
        x.set_from([](std::size_t g) { return static_cast<double>(g % 97); });

        if (regime == Regime::kLocalMapped) {
          // The ON PROCESSOR regime: the programmer asserts the iteration
          // mapping makes every access local (here: a within-block
          // permutation), so no inspector and no messages are needed.
          const auto [lo, hi] = dist->local_range(proc.rank());
          idx.set_from([lo = lo, hi = hi](std::size_t g) {
            return lo + ((g - lo) * 7 + 1) % (hi - lo);
          });
          for (int s = 0; s < sweeps; ++s) {
            hpfcg::ext::on_processor(
                proc, n, hpfcg::ext::BlockMap{n, proc.nprocs()},
                [&](std::size_t i) {
                  result.at_global(i) = x.at_global(idx.at_global(i));
                });
          }
          return;
        }

        idx.set_from([n](std::size_t g) { return (g * 131 + 17) % n; });
        if (regime == Regime::kReuse) {
          GatherSchedule<double> sched(proc, idx, dist);
          for (int s = 0; s < sweeps; ++s) sched.execute(x, result);
        } else {
          for (int s = 0; s < sweeps; ++s) {
            GatherSchedule<double> sched(proc, idx, dist);
            sched.execute(x, result);
          }
        }
      });
      static const char* names[] = {"inspector every sweep",
                                    "schedule reuse [20]",
                                    "ON PROCESSOR local mapping"};
      table.add_row({names[static_cast<int>(regime)], std::to_string(np),
                     hpfcg::util::fmt_count(rt->total_stats().bytes_sent),
                     hpfcg::util::fmt_count(rt->total_stats().messages_sent),
                     hpfcg::util::fmt(rt->modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt(wall.millis(), 4)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: re-inspecting doubles the traffic (index lists travel\n"
         "with every sweep); schedule reuse pays the inspector once; and a\n"
         "declared-local iteration mapping (the ON PROCESSOR proposal)\n"
         "eliminates the machinery entirely — the paper's Section 5.1\n"
         "argument, end to end.\n";
  return 0;
}
