// Per-phase decomposition of the Figure 2 CG iteration.
//
// The paper: "the work per iteration is modest, amounting to a single
// matrix-vector multiplication ..., two inner products ..., and several
// SAXPY operations."  This bench makes that decomposition quantitative:
// the Figure 2 loop is annotated with PhaseProfile and the table reports,
// per phase: flops, messages, bytes and modeled time, per iteration.

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/msg/phase_profile.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::PhaseProfile;
using hpfcg::msg::Process;
using hpfcg::msg::Stats;

int main() {
  const auto a = hpfcg::sparse::laplacian_2d(48, 48);
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 777);
  const std::size_t iters = 40;

  for (const int np : {4, 16}) {
    // One profile per rank; aggregate after the run.
    std::vector<std::map<std::string, Stats>> profiles(np);

    hpfcg_bench::run_machine(np, [&](Process& proc) {
      auto dist = std::make_shared<const Distribution>(
          Distribution::block(n, np));
      auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist);
      auto r = DistributedVector<double>::aligned_like(b);
      auto p = DistributedVector<double>::aligned_like(b);
      auto q = DistributedVector<double>::aligned_like(b);
      b.from_global(b_full);
      hpfcg::hpf::fill(x, 0.0);
      hpfcg::hpf::assign(b, r);
      hpfcg::hpf::assign(r, p);

      PhaseProfile prof(proc);
      prof.enter("dot merges");
      double rho = hpfcg::hpf::dot_product(r, r);
      for (std::size_t k = 0; k < iters; ++k) {
        prof.enter("sparse matvec (incl. p-broadcast)");
        mat.matvec(p, q);
        prof.enter("dot merges");
        const double pq = hpfcg::hpf::dot_product(p, q);
        const double alpha = rho / pq;
        prof.enter("saxpy updates");
        hpfcg::hpf::axpy(alpha, p, x);
        hpfcg::hpf::axpy(-alpha, q, r);
        prof.enter("dot merges");
        const double rho_new = hpfcg::hpf::dot_product(r, r);
        const double beta = rho_new / rho;
        prof.enter("saxpy updates");
        hpfcg::hpf::aypx(beta, r, p);
        rho = rho_new;
      }
      prof.exit();
      profiles[static_cast<std::size_t>(proc.rank())] = prof.phases();
    });

    hpfcg::util::Table table(
        "Figure 2 per-iteration phase decomposition (n=" + std::to_string(n) +
            ", NP=" + std::to_string(np) + ", " + std::to_string(iters) +
            " iterations)",
        {"phase", "flops/it (total)", "msgs/it", "bytes/it",
         "modeled[us]/it (max rank)", "share"});

    // Aggregate.
    std::map<std::string, Stats> total;
    std::map<std::string, double> max_time;
    for (const auto& rank_prof : profiles) {
      for (const auto& [name, s] : rank_prof) {
        total[name] += s;
        max_time[name] = std::max(max_time[name], s.modeled_seconds());
      }
    }
    double makespan = 0.0;
    for (const auto& [name, t] : max_time) makespan += t;
    const double it = static_cast<double>(iters);
    for (const auto& [name, s] : total) {
      table.add_row(
          {name, hpfcg::util::fmt(static_cast<double>(s.flops) / it, 5),
           hpfcg::util::fmt(static_cast<double>(s.messages_sent) / it, 4),
           hpfcg::util::fmt(static_cast<double>(s.bytes_sent) / it, 5),
           hpfcg::util::fmt(max_time[name] * 1e6 / it, 4),
           hpfcg::util::fmt(100.0 * max_time[name] / makespan, 3) + "%"});
    }
    table.print(std::cout);
  }

  std::cout
      << "\nReading: the matvec (dominated by its p-broadcast) and the two\n"
         "DOT_PRODUCT merges split the per-iteration cost; at fixed n the\n"
         "merges' t_s*logNP start-ups grow into the majority as NP rises,\n"
         "while the three SAXPY-class updates communicate nothing and\n"
         "shrink with 1/NP — the paper's Section 2/4 breakdown, measured.\n";
  return 0;
}
