// Experiment F5 (Figure 5, Section 5.1): the PRIVATE ... WITH MERGE(+)
// extension applied to the CSC sparse matrix-vector product.
//
// Three lowerings of the same q = A*p over CSC storage:
//   HPF-1 faithful   — serialized many-to-one updates (matvec_serial);
//   HPF-1 workaround — permanent 2-D temporary + SUM (same cost structure
//                      as private-merge; kept for the memory comparison);
//   proposed PRIVATE — per-processor private q, one MERGE(+) at region end
//                      (matvec_private / PrivateArray).
// The table shows the serialized variant's wait blow-up and that the
// private-merge cost matches the row-wise broadcast (the paper's claim
// that the extension makes CSC-based CG competitive).

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/ext/private_array.hpp"
#include "hpfcg/sparse/convert.hpp"
#include "hpfcg/sparse/dist_csc.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;

int main() {
  const auto csr = hpfcg::sparse::laplacian_2d(48, 48);
  const auto csc = hpfcg::sparse::csr_to_csc(csr);
  const std::size_t n = csr.n_rows();

  hpfcg::util::Table table(
      "F5 — CSC matvec lowerings (2-D Laplacian, n=" + std::to_string(n) +
          ", nnz=" + std::to_string(csr.nnz()) + ")",
      {"lowering", "NP", "bytes", "modeled[ms]", "wait[ms]", "wall[ms]"});

  for (const int np : {2, 4, 8, 16}) {
    for (int variant = 0; variant < 3; ++variant) {
      hpfcg::util::Timer wall;
      auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto dist =
            std::make_shared<const Distribution>(Distribution::block(n, np));
        DistributedVector<double> p(proc, dist), q(proc, dist);
        p.set_from([](std::size_t g) { return 0.5 * static_cast<double>(g % 4); });
        auto mat = hpfcg::sparse::DistCsc<double>::col_aligned(proc, csc, dist);
        if (variant == 0) {
          mat.matvec_serial(p, q);
        } else if (variant == 1) {
          mat.matvec_private(p, q);
        } else {
          // Explicit Figure-5 pattern through the PrivateArray API:
          // PRV$q accumulation over the owned columns, then MERGE(+).
          hpfcg::ext::PrivateArray<double> q_priv(proc, n);
          std::size_t flops = 0;
          for (std::size_t lc = 0; lc < p.local().size(); ++lc) {
            const std::size_t j = p.global_of(lc);
            const double pj = p.local()[lc];
            for (std::size_t k = csc.col_ptr()[j]; k < csc.col_ptr()[j + 1];
                 ++k) {
              q_priv[csc.row_idx()[k]] += csc.values()[k] * pj;
            }
            flops += 2 * (csc.col_ptr()[j + 1] - csc.col_ptr()[j]);
          }
          proc.add_flops(flops);
          q_priv.merge_into(q);
        }
      });
      static const char* names[] = {"HPF-1 serialized", "matvec_private",
                                    "PrivateArray (Figure 5)"};
      table.add_row({names[variant], std::to_string(np),
                     hpfcg::util::fmt_count(rt->total_stats().bytes_sent),
                     hpfcg::util::fmt(rt->modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt(hpfcg_bench::max_wait(*rt) * 1e3, 3),
                     hpfcg::util::fmt(wall.millis(), 3)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: privatizing q turns the serialized Scenario-2 sweep\n"
         "into an embarrassingly parallel one; the single MERGE(+) costs a\n"
         "log-tree vector all-reduce, so modeled time drops by ~NP for the\n"
         "compute phase — the payoff the paper claims for the extension.\n";
  return 0;
}
