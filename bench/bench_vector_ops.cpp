// Experiments A1 + A2 (Section 4):
//   A1  SAXPY runs in O(n/N_P) with zero communication.
//   A2  the inner product costs O(n/N_P) locally plus a t_startup*log(N_P)
//       merge on a hypercube.
//
// Part 1 (google-benchmark): node-local kernel throughput.
// Part 2 (tables): modeled per-rank cost of distributed SAXPY and
// DOT_PRODUCT across n and N_P, next to the closed-form predictions.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/util/span_math.hpp"

namespace {

void BM_SerialAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.5);
  for (auto _ : state) {
    hpfcg::util::axpy<double>(1.0001, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SerialAxpy)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_SerialDot(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> x(n, 1.5), y(n, 0.5);
  double acc = 0.0;
  for (auto _ : state) {
    acc += hpfcg::util::dot_local<double>(x, y);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SerialDot)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void print_tables() {
  using hpfcg::hpf::Distribution;
  using hpfcg::hpf::DistributedVector;

  hpfcg::util::Table saxpy(
      "A1 — SAXPY: modeled per-rank cost is O(n/NP), zero messages",
      {"n", "NP", "flops/rank(max)", "messages", "modeled[us]",
       "predicted 2n/NP*t_f[us]"});
  hpfcg::util::Table dots(
      "A2 — DOT_PRODUCT: local O(n/NP) + t_s*logNP merge (hypercube)",
      {"n", "NP", "msgs/rank(max)", "modeled[us](max rank)",
       "predicted local+merge[us]"});

  const hpfcg::msg::CostParams params;  // paper-era defaults
  for (const std::size_t n : {std::size_t{4096}, std::size_t{65536}}) {
    for (const int np : hpfcg_bench::np_sweep()) {
      auto rt = hpfcg_bench::run_machine(np, [&](hpfcg::msg::Process& p) {
        DistributedVector<double> x(
            p,
            std::make_shared<const Distribution>(Distribution::block(n, np)));
        auto y = DistributedVector<double>::aligned_like(x);
        hpfcg::hpf::fill(x, 1.0);
        hpfcg::hpf::fill(y, 2.0);
        hpfcg::hpf::axpy(0.5, x, y);
      });
      std::uint64_t max_flops = 0;
      for (int r = 0; r < np; ++r) {
        max_flops = std::max(max_flops, rt->stats(r).flops);
      }
      const double predicted =
          2.0 * static_cast<double>((n + np - 1) / np) * params.t_flop;
      saxpy.add_row({std::to_string(n), std::to_string(np),
                     hpfcg::util::fmt_count(max_flops),
                     hpfcg::util::fmt_count(rt->total_stats().messages_sent),
                     hpfcg::util::fmt(rt->modeled_makespan() * 1e6, 4),
                     hpfcg::util::fmt(predicted * 1e6, 4)});

      auto rt2 = hpfcg_bench::run_machine(np, [&](hpfcg::msg::Process& p) {
        DistributedVector<double> x(
            p,
            std::make_shared<const Distribution>(Distribution::block(n, np)));
        hpfcg::hpf::fill(x, 1.0);
        (void)hpfcg::hpf::dot_product(x, x);
      });
      std::uint64_t max_msgs = 0;
      for (int r = 0; r < np; ++r) {
        max_msgs = std::max(max_msgs, rt2->stats(r).messages_sent);
      }
      int log2p = 0;
      while ((1 << log2p) < np) ++log2p;
      const double merge = 2.0 * log2p *
                           (params.t_startup + params.t_hop +
                            8.0 * params.t_comm);
      const double pred =
          2.0 * static_cast<double>((n + np - 1) / np) * params.t_flop + merge;
      dots.add_row({std::to_string(n), std::to_string(np),
                    hpfcg::util::fmt_count(max_msgs),
                    hpfcg::util::fmt(rt2->modeled_makespan() * 1e6, 4),
                    hpfcg::util::fmt(pred * 1e6, 4)});
    }
  }
  saxpy.print(std::cout);
  dots.print(std::cout);
  std::cout << "\nReading: SAXPY cost falls as 1/NP with no messages at all;\n"
               "DOT adds a merge term that grows only logarithmically in NP\n"
               "— the paper's Section 4 vector-operation analysis.\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  print_tables();
  return 0;
}
