// Experiment RD — REDISTRIBUTE cost and payoff.
//
// Migrating the CSR trio onto nnz-balanced cut points costs one
// personalized all-to-all; the paper's cost form for that exchange is
//
//   t_redistribute ≈ t_startup · (N_P − 1) + t_comm · bytes_moved / N_P
//
// per rank (each rank talks to at most N_P − 1 peers and ships its share
// of the payload).  This bench measures the simulated machine against that
// model for a skewed power-law matrix, then shows the payoff: per-rank nnz
// imbalance before/after migration, and the modeled per-iteration matvec
// compute bill it controls.  A rebalance-every sweep shows the mid-solve
// hook amortizing the migration.
//
// Exit status is the CI gate: nonzero if post-migration imbalance exceeds
// 1.1x ideal, if the measured exchange start-up bill disagrees with the
// message count the replicated metadata predicts, or if a solve with the
// hook installed but rebalance_every=0 is not Stats-bit-identical to one
// without the hook.
//
//   ./bench_redistribute [--json out.json]

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/ext/balanced_partition.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/sparse/redistribute.hpp"
#include "hpfcg/util/cli.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Stats;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

/// Max over ranks / ideal average of the per-rank weight under `cuts`.
double imbalance(const std::vector<std::size_t>& weights,
                 const std::vector<std::size_t>& cuts) {
  std::size_t total = 0;
  for (const std::size_t w : weights) total += w;
  const int np = static_cast<int>(cuts.size()) - 1;
  const double ideal =
      static_cast<double>(total) / static_cast<double>(np);
  if (ideal == 0.0) return 1.0;
  return static_cast<double>(hpfcg::ext::bottleneck(weights, cuts)) / ideal;
}

struct MigrationRow {
  int np = 0;
  std::size_t nnz_moved = 0;      ///< machine-wide entries shipped
  std::size_t bytes_moved = 0;    ///< machine-wide payload bytes
  std::uint64_t messages = 0;     ///< machine-wide exchange messages
  double imb_before = 0.0;
  double imb_after = 0.0;
  double model_us = 0.0;          ///< per-rank closed form
  double measured_us = 0.0;       ///< measured modeled_comm delta / NP
};

MigrationRow measure_migration(const sp::Csr<double>& a, int np) {
  const hpfcg::msg::CostParams params;
  const std::size_t n = a.n_rows();
  const auto weights = hpfcg::ext::atom_weights(a.row_ptr());
  const auto block = Distribution::block(n, np);
  std::vector<std::size_t> block_cuts(static_cast<std::size_t>(np) + 1, n);
  block_cuts[0] = 0;
  for (int r = 1; r < np; ++r) {
    block_cuts[static_cast<std::size_t>(r)] = block.local_range(r).first;
  }
  const auto cuts = hpfcg::ext::optimal_nnz_cuts(weights, np);

  MigrationRow row;
  row.np = np;
  row.imb_before = imbalance(weights, block_cuts);
  row.imb_after = imbalance(weights, cuts);

  std::atomic<std::size_t> nnz_moved{0}, bytes_moved{0};
  double comm_before = 0.0, comm_after = 0.0;
  std::uint64_t msgs_before = 0, msgs_after = 0;
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    auto mat = sp::DistCsr<double>::row_aligned(
        proc, a, share(Distribution::block(n, proc.nprocs())));
    proc.barrier();
    sp::RedistributeStats st;
    auto moved = sp::redistribute(mat, cuts, &st);
    nnz_moved += st.nnz_moved;
    bytes_moved += st.bytes_moved;
    (void)moved;
  });
  Stats total;
  for (int r = 0; r < np; ++r) total += rt->stats(r);
  // The build + barrier cost is isolated by re-running without the
  // exchange: counters are deterministic, so the difference is exactly the
  // migration.
  auto rt0 = hpfcg_bench::run_machine(np, [&](Process& proc) {
    auto mat = sp::DistCsr<double>::row_aligned(
        proc, a, share(Distribution::block(n, proc.nprocs())));
    proc.barrier();
  });
  Stats base;
  for (int r = 0; r < np; ++r) base += rt0->stats(r);
  comm_before = base.modeled_comm_seconds;
  comm_after = total.modeled_comm_seconds;
  msgs_before = base.messages_sent;
  msgs_after = total.messages_sent;

  row.nnz_moved = nnz_moved.load();
  row.bytes_moved = bytes_moved.load();
  row.messages = msgs_after - msgs_before;
  row.model_us =
      (params.t_startup * static_cast<double>(np - 1) +
       params.t_comm * static_cast<double>(row.bytes_moved) /
           static_cast<double>(np)) *
      1e6;
  row.measured_us = (comm_after - comm_before) /
                    static_cast<double>(np) * 1e6;
  return row;
}

/// Machine-wide counter signature of one cg_dist solve.
Stats solve_signature(const sp::Csr<double>& a, int np, bool install_hook,
                      std::size_t rebalance_every,
                      std::size_t* iterations = nullptr) {
  const std::size_t n = a.n_rows();
  const auto b_full = sp::random_rhs(n, 1234);
  std::atomic<std::size_t> iters{0};
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    auto dist = share(Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const sv::SolveOptions opts{.rel_tolerance = 1e-10,
                                .rebalance_every = rebalance_every};
    sv::SolveResult res;
    if (install_hook) {
      const auto hook = sv::make_csr_rebalancer<double>(mat);
      res = sv::cg_dist<double>(op, b, x, opts, hook);
    } else {
      res = sv::cg_dist<double>(op, b, x, opts);
    }
    if (proc.rank() == 0) iters = res.iterations;
  });
  if (iterations != nullptr) *iterations = iters.load();
  Stats total;
  for (int r = 0; r < np; ++r) total += rt->stats(r);
  return total;
}

void append_json(std::ostringstream& os, const MigrationRow& r, bool first) {
  if (!first) os << ",\n";
  os << "  {\"np\": " << r.np << ", \"nnz_moved\": " << r.nnz_moved
     << ", \"bytes_moved\": " << r.bytes_moved
     << ", \"messages\": " << r.messages
     << ", \"imbalance_before\": " << r.imb_before
     << ", \"imbalance_after\": " << r.imb_after
     << ", \"model_us\": " << r.model_us
     << ", \"measured_us\": " << r.measured_us << "}";
}

}  // namespace

int main(int argc, char** argv) {
  hpfcg::util::Cli cli(argc, argv);
  const std::string json_path =
      cli.get("json", "", "write rows as JSON to this path");
  if (cli.help_requested()) {
    std::cout << cli.help_text("bench_redistribute");
    return 0;
  }
  cli.finish();

  bool ok = true;
  const hpfcg::msg::CostParams params;
  // Skewed power-law workload: hub rows are ~30x heavier than base rows.
  const auto a = sp::powerlaw_spd(4096, 4, 40, 160, 77);
  const auto weights = hpfcg::ext::atom_weights(a.row_ptr());

  // ---- RD1: migration cost, model vs machine ----------------------------
  hpfcg::util::Table cost_table(
      "RD1 — REDISTRIBUTE onto optimal nnz cuts (power-law n=4096): one "
      "personalized all-to-all, model t_s*(NP-1) + t_c*bytes/NP per rank",
      {"NP", "rows imb before", "imb after", "nnz moved", "bytes",
       "msgs", "model[us]", "measured[us]"});
  std::vector<MigrationRow> rows;
  for (const int np : {2, 4, 8, 16}) {
    const MigrationRow row = measure_migration(a, np);
    rows.push_back(row);
    cost_table.add_row(
        {std::to_string(np), hpfcg::util::fmt(row.imb_before, 3),
         hpfcg::util::fmt(row.imb_after, 3), std::to_string(row.nnz_moved),
         std::to_string(row.bytes_moved), std::to_string(row.messages),
         hpfcg::util::fmt(row.model_us, 2),
         hpfcg::util::fmt(row.measured_us, 2)});
    // Gate 1: the balanced cuts must land within 1.1x of ideal.
    if (row.imb_after > 1.1) {
      std::cerr << "NP=" << np << ": post-migration imbalance "
                << row.imb_after << " exceeds 1.1x ideal\n";
      ok = false;
    }
    // Gate 2: the skewed workload must actually ship something, and the
    // exchange plus the nnz-count allgather stays within 2*NP*(NP-1)
    // messages — ONE personalized all-to-all, not a per-row storm.
    const auto bound = 2 * static_cast<std::uint64_t>(np) *
                       static_cast<std::uint64_t>(np - 1);
    if (row.messages == 0 || row.messages > bound) {
      std::cerr << "NP=" << np << ": exchange message count "
                << row.messages << " outside (0, " << bound << "]\n";
      ok = false;
    }
    // Gate 3: measured start-up bill equals t_startup per message — the
    // per-rank measured comm delta must sit within 3x of the closed form
    // (the model idealizes the message count to exactly NP-1 per rank).
    if (row.measured_us > 3.0 * row.model_us + 1.0) {
      std::cerr << "NP=" << np << ": measured " << row.measured_us
                << "us vs model " << row.model_us << "us\n";
      ok = false;
    }
  }
  cost_table.print(std::cout);

  // ---- RD2: what the migration buys per matvec --------------------------
  hpfcg::util::Table payoff_table(
      "RD2 — modeled per-matvec compute bill (2 flops/nnz, bottleneck "
      "rank): uniform block cuts vs migrated optimal cuts",
      {"NP", "block[us]", "optimal[us]", "speedup"});
  for (const int np : {2, 4, 8, 16}) {
    const auto block = Distribution::block(a.n_rows(), np);
    std::vector<std::size_t> bcuts(static_cast<std::size_t>(np) + 1,
                                   a.n_rows());
    bcuts[0] = 0;
    for (int r = 1; r < np; ++r) {
      bcuts[static_cast<std::size_t>(r)] = block.local_range(r).first;
    }
    const auto ocuts = hpfcg::ext::optimal_nnz_cuts(weights, np);
    const double us_block =
        2.0 * static_cast<double>(hpfcg::ext::bottleneck(weights, bcuts)) *
        params.t_flop * 1e6;
    const double us_opt =
        2.0 * static_cast<double>(hpfcg::ext::bottleneck(weights, ocuts)) *
        params.t_flop * 1e6;
    payoff_table.add_row({std::to_string(np), hpfcg::util::fmt(us_block, 2),
                          hpfcg::util::fmt(us_opt, 2),
                          hpfcg::util::fmt(us_block / us_opt, 2)});
  }
  payoff_table.print(std::cout);

  // ---- RD3: the mid-solve hook, off must be free ------------------------
  const auto small = sp::powerlaw_spd(512, 4, 8, 96, 31);
  hpfcg::util::Table hook_table(
      "RD3 — cg_dist with the rebalance hook (power-law n=512, NP=4): "
      "rebalance_every sweep; 0 must be bit-identical to no hook at all",
      {"rebalance_every", "iterations", "msgs", "bytes", "reductions"});
  std::size_t iters = 0;
  const Stats off = solve_signature(small, 4, false, 0, &iters);
  hook_table.add_row({"(no hook)", std::to_string(iters),
                      std::to_string(off.messages_sent),
                      std::to_string(off.bytes_sent),
                      std::to_string(off.reductions)});
  for (const std::size_t every : {std::size_t{0}, std::size_t{25},
                                  std::size_t{10}, std::size_t{5}}) {
    const Stats sig = solve_signature(small, 4, true, every, &iters);
    hook_table.add_row({std::to_string(every), std::to_string(iters),
                        std::to_string(sig.messages_sent),
                        std::to_string(sig.bytes_sent),
                        std::to_string(sig.reductions)});
    if (every == 0 &&
        (sig.messages_sent != off.messages_sent ||
         sig.bytes_sent != off.bytes_sent ||
         sig.reductions != off.reductions || sig.flops != off.flops)) {
      std::cerr << "rebalance_every=0 with hook installed is not "
                   "bit-identical to the hook-free solve\n";
      ok = false;
    }
  }
  hook_table.print(std::cout);

  std::cout << "\nReading: one all-to-all at t_s*(NP-1) + t_c*bytes/NP buys\n"
               "a bottleneck rank within 1.1x of ideal — against the up-to-\n"
               "severalfold nnz imbalance uniform block cuts leave on skewed\n"
               "matrices.  The mid-solve hook pays that price only when\n"
               "rebalance_every fires; off, the solve is bit-identical.\n";

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      append_json(os, rows[i], i == 0);
    }
    os << "\n]\n";
    std::ofstream out(json_path);
    out << os.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
