// Ablation B2: GMRES(m) vs CG — the "longer recurrences (which require
// greater storage)" trade-off of Section 2.1, made quantitative.
//
//   * storage: CG keeps 4 distributed vectors; GMRES(m) keeps m+1 basis
//     vectors plus the Hessenberg;
//   * communication: CG performs 2 DOT_PRODUCT merges per iteration;
//     GMRES's j-th Arnoldi step performs j+2 (growing with the basis);
//   * capability: GMRES handles the non-symmetric systems CG cannot.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/solvers/dist_gmres.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
namespace sv = hpfcg::solvers;

int main() {
  const auto a = hpfcg::sparse::laplacian_2d(32, 32);
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 808);
  const int np = 8;

  hpfcg::util::Table table(
      "B2 — CG vs GMRES(m) on an SPD system (n=" + std::to_string(n) +
          ", NP=" + std::to_string(np) + ", tol 1e-8)",
      {"solver", "iters", "converged", "vectors stored", "collectives",
       "bytes total", "modeled[ms]"});

  const auto run_one = [&](const char* name, std::size_t restart) {
    sv::SolveResult result;
    auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
      auto dist = std::make_shared<const Distribution>(
          Distribution::block(n, np));
      auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
      DistributedVector<double> b(proc, dist), x(proc, dist);
      b.from_global(b_full);
      const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                        DistributedVector<double>& q) {
        mat.matvec(p, q);
      };
      sv::SolveResult res;
      if (restart == 0) {
        res = sv::cg_dist<double>(op, b, x, {.max_iterations = 3000,
                                             .rel_tolerance = 1e-8});
      } else {
        res = sv::gmres_dist<double>(
            op, b, x,
            {.base = {.max_iterations = 3000, .rel_tolerance = 1e-8},
             .restart = restart});
      }
      if (proc.rank() == 0) result = res;
    });
    const std::size_t stored = restart == 0 ? 4 : restart + 2;
    table.add_row({name, std::to_string(result.iterations),
                   result.converged ? "yes" : "no", std::to_string(stored),
                   hpfcg::util::fmt_count(rt->total_stats().collectives),
                   hpfcg::util::fmt_count(rt->total_stats().bytes_sent),
                   hpfcg::util::fmt(rt->modeled_makespan() * 1e3, 4)});
  };

  run_one("CG", 0);
  run_one("GMRES(5)", 5);
  run_one("GMRES(20)", 20);
  run_one("GMRES(60)", 60);
  table.print(std::cout);

  std::cout
      << "\nReading: on SPD systems CG's 3-term recurrence wins outright —\n"
         "fixed storage, 2 merges per step.  GMRES needs the m+1-vector\n"
         "basis and its merge count grows with the basis depth; small\n"
         "restarts shrink storage but inflate iterations.  This is the\n"
         "quantitative form of Section 2.1's storage remark — and the\n"
         "reason the paper centres its HPF evaluation on CG.\n";
  return 0;
}
