// Experiment CA — communication-avoiding CG.
//
// The paper's cost analysis makes each DOT_PRODUCT merge cost
// t_startup * log NP regardless of payload, so the reductions-per-iteration
// count IS the latency bill of a solver.  This bench measures that bill for
// three CG formulations across n and NP sweeps:
//   naive    — Figure 2 transcribed literally: 3 merges/iteration (rho,
//              alpha denominator, stop criterion);
//   baseline — cg_dist: the stop-criterion merge reused as next rho,
//              2 merges/iteration;
//   fused    — cg_fused_dist (Chronopoulos–Gear): ONE two-wide batched
//              merge/iteration.
// plus the fused PCG and BiCGSTAB variants.  Per-iteration numbers are
// isolated by differencing two runs with different fixed iteration counts,
// so setup costs cancel exactly (counters are deterministic).
//
// Exit status is the CI gate: nonzero if any variant's measured
// reductions/iteration disagrees with its advertised count, or if fusing
// fails to cut the modeled merge start-up by >= 2x for NP > 1.
//
//   ./bench_comm_avoiding [--json out.json]

#include <chrono>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"

namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Stats;

namespace {

enum class Variant { kNaive, kBaseline, kFused, kPcg, kPcgFused,
                     kBicgstab, kBicgstabFused };

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kNaive: return "cg/naive";
    case Variant::kBaseline: return "cg/baseline";
    case Variant::kFused: return "cg/fused";
    case Variant::kPcg: return "pcg/baseline";
    case Variant::kPcgFused: return "pcg/fused";
    case Variant::kBicgstab: return "bicgstab/baseline";
    case Variant::kBicgstabFused: return "bicgstab/fused";
  }
  return "?";
}

/// Figure 2 transcribed literally: the stop criterion re-merges (r,r) every
/// iteration, so the loop pays THREE DOT_PRODUCT merges.  Runs exactly
/// `iters` loop iterations (tolerance 0 so the exit never fires).
void cg_naive_iters(const sv::DistOp<double>& op,
                    const DistributedVector<double>& b,
                    DistributedVector<double>& x, std::size_t iters) {
  auto r = DistributedVector<double>::aligned_like(b);
  auto p = DistributedVector<double>::aligned_like(b);
  auto q = DistributedVector<double>::aligned_like(b);
  hpfcg::hpf::assign(b, r);
  hpfcg::hpf::assign(r, p);
  op(p, q);
  double rho = hpfcg::hpf::dot_product(r, r);
  double alpha = rho / hpfcg::hpf::dot_product(p, q);
  hpfcg::hpf::axpy(alpha, p, x);
  hpfcg::hpf::axpy(-alpha, q, r);
  for (std::size_t k = 0; k < iters; ++k) {
    const double rho0 = rho;
    rho = hpfcg::hpf::dot_product(r, r);               // merge 1
    hpfcg::hpf::aypx(rho / rho0, r, p);
    op(p, q);
    alpha = rho / hpfcg::hpf::dot_product(p, q);       // merge 2
    hpfcg::hpf::axpy(alpha, p, x);
    hpfcg::hpf::axpy(-alpha, q, r);
    if (std::sqrt(hpfcg::hpf::dot_product(r, r)) <= 0.0) break;  // merge 3
  }
}

struct Measurement {
  double red_per_iter = 0.0;       ///< reductions per iteration (per rank)
  double msgs_per_iter = 0.0;      ///< machine-wide messages per iteration
  double startup_us = 0.0;         ///< machine-wide t_startup bill / iter
  double bandwidth_us = 0.0;       ///< machine-wide byte bill / iter
  double flop_us = 0.0;            ///< machine-wide flop bill / iter
  double makespan_us = 0.0;        ///< modeled critical path / iter
  double wall_us = 0.0;            ///< host wall-clock / iter
};

/// Run `variant` for a fixed iteration count and report the totals.
struct RunTotals {
  Stats stats;
  double makespan = 0.0;
  double wall_us = 0.0;
};

RunTotals run_once(Variant variant, std::size_t n, int np,
                   std::size_t iters) {
  const auto a = sp::tridiagonal(n, 2.0, -1.0);
  const auto b_full = sp::random_rhs(n, 1996);
  const auto diag = a.diagonal();
  const auto t0 = std::chrono::steady_clock::now();
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    auto dist = std::make_shared<const Distribution>(
        Distribution::block(n, proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    mat.enable_caching();
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const sv::SolveOptions opts{.max_iterations = iters,
                                .rel_tolerance = 1e-30};
    switch (variant) {
      case Variant::kNaive:
        cg_naive_iters(op, b, x, iters);
        break;
      case Variant::kBaseline:
        (void)sv::cg_dist<double>(op, b, x, opts);
        break;
      case Variant::kFused:
        (void)sv::cg_fused_dist<double>(op, b, x, opts);
        break;
      case Variant::kPcg:
        (void)sv::pcg_dist<double>(op, sv::jacobi_dist(inv_diag), b, x, opts);
        break;
      case Variant::kPcgFused:
        (void)sv::pcg_fused_dist<double>(op, sv::jacobi_dist(inv_diag), b, x,
                                         opts);
        break;
      case Variant::kBicgstab:
        (void)sv::bicgstab_dist<double>(op, b, x, opts);
        break;
      case Variant::kBicgstabFused:
        (void)sv::bicgstab_fused_dist<double>(op, b, x, opts);
        break;
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  RunTotals totals;
  totals.stats = rt->total_stats();
  totals.stats.reductions = rt->stats(0).reductions;  // per-rank currency
  totals.makespan = rt->modeled_makespan();
  totals.wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return totals;
}

/// Difference two fixed-iteration runs so setup cancels exactly.
Measurement measure(Variant variant, std::size_t n, int np) {
  const std::size_t lo = 10, hi = 30;
  const auto a = run_once(variant, n, np, lo);
  const auto b = run_once(variant, n, np, hi);
  const double span = static_cast<double>(hi - lo);
  const hpfcg::msg::CostParams params;  // the model the machine ran under
  Measurement m;
  m.red_per_iter =
      static_cast<double>(b.stats.reductions - a.stats.reductions) / span;
  m.msgs_per_iter =
      static_cast<double>(b.stats.messages_sent - a.stats.messages_sent) /
      span;
  m.startup_us = m.msgs_per_iter * params.t_startup * 1e6;
  m.bandwidth_us =
      static_cast<double>(b.stats.bytes_sent - a.stats.bytes_sent) / span *
      params.t_comm * 1e6;
  m.flop_us = static_cast<double>(b.stats.flops - a.stats.flops) / span *
              params.t_flop * 1e6;
  m.makespan_us = (b.makespan - a.makespan) / span * 1e6;
  m.wall_us = (b.wall_us - a.wall_us) / span;
  return m;
}

struct Row {
  std::string variant;
  std::size_t n = 0;
  int np = 0;
  Measurement m;
};

void append_json(std::ostringstream& os, const Row& row, bool first) {
  if (!first) os << ",\n";
  os << "  {\"variant\": \"" << row.variant << "\", \"n\": " << row.n
     << ", \"np\": " << row.np
     << ", \"reductions_per_iter\": " << row.m.red_per_iter
     << ", \"messages_per_iter\": " << row.m.msgs_per_iter
     << ", \"startup_us\": " << row.m.startup_us
     << ", \"bandwidth_us\": " << row.m.bandwidth_us
     << ", \"flop_us\": " << row.m.flop_us
     << ", \"makespan_us\": " << row.m.makespan_us
     << ", \"wall_us\": " << row.m.wall_us << "}";
}

}  // namespace

int main(int argc, char** argv) {
  hpfcg::util::Cli cli(argc, argv);
  const std::string json_path =
      cli.get("json", "", "write rows as JSON to this path");
  if (cli.help_requested()) {
    std::cout << cli.help_text("bench_comm_avoiding");
    return 0;
  }
  cli.finish();

  std::vector<Row> rows;
  bool ok = true;
  const hpfcg::msg::CostParams params;

  // ---- CG: naive vs baseline vs fused, n and NP sweeps ------------------
  hpfcg::util::Table cg_table(
      "CA1 — CG merges per iteration: Figure-2-literal vs cg_dist vs "
      "Chronopoulos-Gear fused (tridiagonal, per-iteration bills are "
      "machine-wide)",
      {"variant", "n", "NP", "red/iter", "msgs/iter", "startup[us]",
       "bw[us]", "flop[us]", "makespan[us]", "wall[us]"});
  const double expected_cg[] = {3.0, 2.0, 1.0};
  for (const std::size_t n : {std::size_t{1024}, std::size_t{8192}}) {
    for (const int np : hpfcg_bench::np_sweep()) {
      double merge_startup[3] = {0.0, 0.0, 0.0};
      int vi = 0;
      for (const Variant v :
           {Variant::kNaive, Variant::kBaseline, Variant::kFused}) {
        const Measurement m = measure(v, n, np);
        rows.push_back({variant_name(v), n, np, m});
        cg_table.add_row(
            {variant_name(v), std::to_string(n), std::to_string(np),
             hpfcg::util::fmt(m.red_per_iter, 3),
             hpfcg::util::fmt(m.msgs_per_iter, 4),
             hpfcg::util::fmt(m.startup_us, 4),
             hpfcg::util::fmt(m.bandwidth_us, 2),
             hpfcg::util::fmt(m.flop_us, 2),
             hpfcg::util::fmt(m.makespan_us, 4),
             hpfcg::util::fmt(m.wall_us, 4)});
        if (m.red_per_iter != expected_cg[vi]) {
          std::cerr << variant_name(v) << " n=" << n << " NP=" << np
                    << ": expected " << expected_cg[vi]
                    << " reductions/iter, measured " << m.red_per_iter
                    << "\n";
          ok = false;
        }
        // Modeled merge start-up on the critical path: each reduction is a
        // full tree walk of 2*ceil(log2 NP) latency-bound steps.
        const int logp = static_cast<int>(std::ceil(std::log2(np)));
        merge_startup[vi] =
            m.red_per_iter * 2.0 * logp * params.t_startup * 1e6;
        ++vi;
      }
      if (np > 1) {
        // Acceptance gate: fusing must cut the merge start-up >= 2x vs the
        // 2-merge baseline (and 3x vs the literal Figure 2 loop).
        if (merge_startup[1] < 2.0 * merge_startup[2] - 1e-9 ||
            merge_startup[0] < 3.0 * merge_startup[2] - 1e-9) {
          std::cerr << "merge start-up not reduced as required at n=" << n
                    << " NP=" << np << "\n";
          ok = false;
        }
      }
    }
  }
  cg_table.print(std::cout);

  // ---- Fused PCG / BiCGSTAB: reduction bills ----------------------------
  hpfcg::util::Table fam_table(
      "CA2 — fused variants across the solver family (n=2048): merges per "
      "iteration and modeled merge start-up on the critical path",
      {"variant", "NP", "red/iter", "merge startup[us]", "saved[us]/iter"});
  const struct {
    Variant base, fused;
    double expect_base, expect_fused;
  } pairs[] = {
      {Variant::kPcg, Variant::kPcgFused, 3.0, 1.0},
      {Variant::kBicgstab, Variant::kBicgstabFused, 6.0, 3.0},
  };
  for (const auto& pair : pairs) {
    for (const int np : {2, 4, 8, 16}) {
      const int logp = static_cast<int>(std::ceil(std::log2(np)));
      const double per_merge = 2.0 * logp * params.t_startup * 1e6;
      const Measurement mb = measure(pair.base, 2048, np);
      const Measurement mf = measure(pair.fused, 2048, np);
      rows.push_back({variant_name(pair.base), 2048, np, mb});
      rows.push_back({variant_name(pair.fused), 2048, np, mf});
      fam_table.add_row({variant_name(pair.base), std::to_string(np),
                         hpfcg::util::fmt(mb.red_per_iter, 3),
                         hpfcg::util::fmt(mb.red_per_iter * per_merge, 4),
                         "-"});
      fam_table.add_row(
          {variant_name(pair.fused), std::to_string(np),
           hpfcg::util::fmt(mf.red_per_iter, 3),
           hpfcg::util::fmt(mf.red_per_iter * per_merge, 4),
           hpfcg::util::fmt((mb.red_per_iter - mf.red_per_iter) * per_merge,
                            4)});
      if (mb.red_per_iter != pair.expect_base ||
          mf.red_per_iter != pair.expect_fused) {
        std::cerr << variant_name(pair.fused) << " NP=" << np
                  << ": reduction counts off (base " << mb.red_per_iter
                  << ", fused " << mf.red_per_iter << ")\n";
        ok = false;
      }
    }
  }
  fam_table.print(std::cout);

  std::cout << "\nReading: fusing CG's merges into one dot_products batch\n"
               "cuts the latency-bound term from 2 (or Figure 2's literal\n"
               "3) tree walks per iteration to one — the t_startup*log NP\n"
               "bill the paper identifies as CG's scaling limit.  Bandwidth\n"
               "and flop bills are unchanged: only message COUNT drops.\n";

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      append_json(os, rows[i], i == 0);
    }
    os << "\n]\n";
    std::ofstream out(json_path);
    out << os.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
