// Experiment F3 (Figure 3, Scenario 1): row-wise partitioned matrix-vector
// product.  A is (BLOCK, *), vectors are (BLOCK).
//
// The paper's claims reproduced here:
//   * the product requires one all-to-all broadcast of the vector p,
//     costing t_s*logNP + t_c*(n/NP)(NP-1) on a hypercube;
//   * after the local phase "no communication is needed to rearrange the
//     distribution of the results" — measured as zero post-compute bytes;
//   * dense and CSR variants share the broadcast; CSR adds the missing-
//     element fetches only when the nnz arrays are split off row
//     boundaries (that pathology is bench_atom_distribution's subject).

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dense_matrix.hpp"
#include "hpfcg/hpf/matvec_dense.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;

namespace {

void dense_table() {
  const hpfcg::msg::CostParams params;
  hpfcg::util::Table table(
      "F3 — dense (BLOCK,*) row-wise matvec: broadcast + local GEMV",
      {"n", "NP", "bytes moved", "msgs", "modeled[ms]",
       "predicted bcast+flops[ms]", "wall[ms]"});
  for (const std::size_t n : {std::size_t{256}, std::size_t{512}}) {
    for (const int np : hpfcg_bench::np_sweep()) {
      hpfcg::util::Timer wall;
      auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto dist = std::make_shared<const Distribution>(
            Distribution::block(n, np));
        hpfcg::hpf::DenseRowBlockMatrix<double> a(proc, dist);
        a.set_from([](std::size_t i, std::size_t j) {
          return hpfcg::sparse::em_dense_entry(i, j, 8.0);
        });
        DistributedVector<double> p(proc, dist), q(proc, dist);
        p.set_from([](std::size_t g) { return static_cast<double>(g % 3); });
        hpfcg::hpf::matvec_rowwise(a, p, q);
      });
      const double wall_ms = wall.millis();
      const std::size_t per_rank = (n + np - 1) / static_cast<std::size_t>(np);
      const double predicted =
          rt->cost().allgather_time(per_rank * 8) +
          2.0 * static_cast<double>(per_rank) * static_cast<double>(n) *
              params.t_flop;
      table.add_row({std::to_string(n), std::to_string(np),
                     hpfcg::util::fmt_count(rt->total_stats().bytes_sent),
                     hpfcg::util::fmt_count(rt->total_stats().messages_sent),
                     hpfcg::util::fmt(rt->modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt(predicted * 1e3, 4),
                     hpfcg::util::fmt(wall_ms, 4)});
    }
  }
  table.print(std::cout);
}

void csr_table() {
  hpfcg::util::Table table(
      "F3 — sparse CSR row-aligned matvec (2-D Laplacian): same broadcast, "
      "O(nnz/NP) compute",
      {"n", "nnz", "NP", "bytes moved", "modeled[ms]", "remote nnz",
       "wall[ms]"});
  for (const std::size_t side : {std::size_t{32}, std::size_t{64}}) {
    const auto a = hpfcg::sparse::laplacian_2d(side, side);
    const std::size_t n = a.n_rows();
    for (const int np : hpfcg_bench::np_sweep()) {
      std::size_t remote = 0;
      hpfcg::util::Timer wall;
      auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto dist = std::make_shared<const Distribution>(
            Distribution::block(n, np));
        auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
        DistributedVector<double> p(proc, dist), q(proc, dist);
        p.set_from([](std::size_t g) { return static_cast<double>(g % 5); });
        mat.matvec(p, q);
        if (proc.rank() == 0) remote = mat.remote_nnz();
      });
      table.add_row({std::to_string(n), std::to_string(a.nnz()),
                     std::to_string(np),
                     hpfcg::util::fmt_count(rt->total_stats().bytes_sent),
                     hpfcg::util::fmt(rt->modeled_makespan() * 1e3, 4),
                     hpfcg::util::fmt_count(remote),
                     hpfcg::util::fmt(wall.millis(), 4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: communication is exactly the p-broadcast (bytes ~\n"
               "(NP-1)/NP * n * 8 per sweep); the result vector q needs no\n"
               "rearrangement, and with row-aligned (ATOM) nnz storage the\n"
               "remote-element count is zero — Figure 3's data flow.\n";
}

}  // namespace

int main() {
  dense_table();
  csr_table();
  return 0;
}
