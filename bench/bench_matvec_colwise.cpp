// Experiments F4 + A8 (Figure 4, Scenario 2): column-wise partitioned
// matrix-vector product, A is (*, BLOCK).
//
// Reproduced claims:
//   * the many-to-one accumulation forbids a parallel loop in HPF-1: the
//     faithful lowering serializes the processors (wait column);
//   * the SUM-merge workaround restores parallelism at the price of a
//     full-length temporary per processor (memory column);
//   * A8: "it is not possible to reduce the communication time if the
//     matrix is partitioned into regular stripes either in a row-wise or
//     column-wise fashion" — row-wise broadcast and column-wise merge move
//     the same-order volume.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dense_matrix.hpp"
#include "hpfcg/hpf/matvec_dense.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;

namespace {

struct Row {
  unsigned long long bytes;
  unsigned long long msgs;
  double modeled_ms;
  double wait_ms;
  double wall_ms;
};

enum class Variant { kRowwise, kColwiseSum, kColwiseSerial };

Row run(std::size_t n, int np, Variant v) {
  hpfcg::util::Timer wall;
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    auto dist =
        std::make_shared<const Distribution>(Distribution::block(n, np));
    DistributedVector<double> p(proc, dist), q(proc, dist);
    p.set_from([](std::size_t g) { return static_cast<double>(g % 7) - 3.0; });
    const auto entry = [](std::size_t i, std::size_t j) {
      return 1.0 / (1.0 + static_cast<double>(i + j));
    };
    if (v == Variant::kRowwise) {
      hpfcg::hpf::DenseRowBlockMatrix<double> a(proc, dist);
      a.set_from(entry);
      hpfcg::hpf::matvec_rowwise(a, p, q);
    } else {
      hpfcg::hpf::DenseColBlockMatrix<double> a(proc, dist);
      a.set_from(entry);
      if (v == Variant::kColwiseSum) {
        hpfcg::hpf::matvec_colwise_sum(a, p, q);
      } else {
        hpfcg::hpf::matvec_colwise_serial(a, p, q);
      }
    }
  });
  return {rt->total_stats().bytes_sent, rt->total_stats().messages_sent,
          rt->modeled_makespan() * 1e3, hpfcg_bench::max_wait(*rt) * 1e3,
          wall.millis()};
}

}  // namespace

int main() {
  const std::size_t n = 384;
  hpfcg::util::Table table(
      "F4/A8 — dense matvec, n=" + std::to_string(n) +
          ": Scenario 1 vs Scenario 2 lowerings",
      {"variant", "NP", "bytes", "msgs", "modeled[ms]", "wait[ms]",
       "temp doubles/rank", "wall[ms]"});

  for (const int np : {2, 4, 8, 16}) {
    const auto row1 = run(n, np, Variant::kRowwise);
    const auto row2 = run(n, np, Variant::kColwiseSum);
    const auto row3 = run(n, np, Variant::kColwiseSerial);
    table.add_row({"(BLOCK,*) row-wise", std::to_string(np),
                   hpfcg::util::fmt_count(row1.bytes),
                   hpfcg::util::fmt_count(row1.msgs),
                   hpfcg::util::fmt(row1.modeled_ms, 4),
                   hpfcg::util::fmt(row1.wait_ms, 3), "0",
                   hpfcg::util::fmt(row1.wall_ms, 3)});
    table.add_row({"(*,BLOCK) + SUM merge", std::to_string(np),
                   hpfcg::util::fmt_count(row2.bytes),
                   hpfcg::util::fmt_count(row2.msgs),
                   hpfcg::util::fmt(row2.modeled_ms, 4),
                   hpfcg::util::fmt(row2.wait_ms, 3), std::to_string(n),
                   hpfcg::util::fmt(row2.wall_ms, 3)});
    table.add_row({"(*,BLOCK) serialized", std::to_string(np),
                   hpfcg::util::fmt_count(row3.bytes),
                   hpfcg::util::fmt_count(row3.msgs),
                   hpfcg::util::fmt(row3.modeled_ms, 4),
                   hpfcg::util::fmt(row3.wait_ms, 3), std::to_string(n),
                   hpfcg::util::fmt(row3.wall_ms, 3)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading:\n"
         "  * the serialized Scenario-2 loop books ~ (NP-1)/NP of the total\n"
         "    compute as wait — it 'can not be performed in parallel';\n"
         "  * the SUM-merge workaround removes the wait and moves the same\n"
         "    order of bytes as the row-wise broadcast (A8: neither stripe\n"
         "    direction reduces communication);\n"
         "  * the price is an n-length temporary per processor, which is\n"
         "    what the paper's PRIVATE/MERGE proposal manages implicitly.\n";
  return 0;
}
