// Experiment RP — opt-in bit-reproducible reductions (hpfcg::repro).
//
// Floating-point addition is not associative, so the plain solvers round
// differently at every NP and after every mid-solve REDISTRIBUTE: the
// same problem returns different residual-history bits depending on the
// machine size and the rebalance schedule.  With HPFCG_REPRO=1 every
// sum-class reduction routes through an exact fixed-point
// superaccumulator, merged limb-wise across the tree (associative) and
// rounded exactly once — so the whole trajectory becomes a pure function
// of the problem.
//
// Exit status is the CI gate: nonzero if
//   RP1  repro-mode fused CG / PCG residual histories differ anywhere
//        across NP in {1,2,4,8};
//   RP2  a mid-solve rebalance (any cadence, any NP) moves the repro-mode
//        history by even one bit;
//   RP3  any of N perturbed replays (default 50, --runs) of the repro
//        pcg_fused with rebalancing diverges un-flagged;
//   RP4  the repro-mode wall-clock overhead at NP=8 on a 2-D Laplacian
//        reaches 2x the plain path;
//   RP5  with the mode off, Stats or results differ from an untouched
//        run (the opt-in must cost nothing until enabled).
// --json PATH writes the machine-readable report the CI job uploads.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/hpf/dist_vector.hpp"
#include "hpfcg/hpf/intrinsics.hpp"
#include "hpfcg/hpf/redistribute.hpp"
#include "hpfcg/msg/cost_model.hpp"
#include "hpfcg/msg/process.hpp"
#include "hpfcg/race/race.hpp"
#include "hpfcg/race/replay.hpp"
#include "hpfcg/repro/repro.hpp"
#include "hpfcg/repro/superacc.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/rebalance.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/cli.hpp"

namespace race = hpfcg::race;
namespace repro = hpfcg::repro;
namespace sv = hpfcg::solvers;
namespace sp = hpfcg::sparse;
using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
using hpfcg::msg::Runtime;
using hpfcg::msg::Stats;

namespace {

auto share(Distribution d) {
  return std::make_shared<const Distribution>(std::move(d));
}

struct Solve {
  std::uint64_t signature = 0;
  std::size_t iterations = 0;
  Stats total;
  double wall_us = 0.0;
};

/// One fused CG (prec == false) or Jacobi-PCG (prec == true) solve with an
/// optional rebalance cadence; rank 0's residual signature plus the
/// machine-wide Stats and the wall time of the whole machine run.
Solve run_solve(const sp::Csr<double>& a, const std::vector<double>& b_full,
                int np, bool prec, std::size_t rebalance_every) {
  Solve out;
  const auto diag = a.diagonal();
  const auto t0 = std::chrono::steady_clock::now();
  auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
    auto dist = share(Distribution::block(a.n_rows(), proc.nprocs()));
    auto mat = sp::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist),
        inv_diag(proc, dist);
    b.from_global(b_full);
    inv_diag.set_from([&](std::size_t g) { return 1.0 / diag[g]; });
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const sv::SolveOptions opts{.rel_tolerance = 1e-10,
                                .track_residuals = true,
                                .rebalance_every = rebalance_every};
    sv::SolveResult res;
    if (prec) {
      const sv::DistPrec<double> pc =
          [&inv_diag](const DistributedVector<double>& r,
                      DistributedVector<double>& z) {
            hpfcg::hpf::hadamard(inv_diag, r, z);
          };
      const auto hook = sv::make_csr_rebalancer<double>(
          mat, [&](const hpfcg::hpf::DistPtr& nd) {
            inv_diag = hpfcg::hpf::redistribute(inv_diag, nd);
          });
      res = sv::pcg_fused_dist<double>(
          op, pc, b, x, opts,
          rebalance_every == 0 ? sv::RebalanceHook{} : hook);
    } else {
      const auto hook = sv::make_csr_rebalancer<double>(mat);
      res = sv::cg_fused_dist<double>(
          op, b, x, opts,
          rebalance_every == 0 ? sv::RebalanceHook{} : hook);
    }
    if (proc.rank() == 0) {
      out.signature = res.residual_signature();
      out.iterations = res.iterations;
    }
  });
  const auto t1 = std::chrono::steady_clock::now();
  out.total = rt->total_stats();
  out.wall_us = std::chrono::duration<double, std::micro>(t1 - t0).count();
  return out;
}

/// Best-of-N wall time (minimum sheds scheduler noise).
double best_wall_us(const sp::Csr<double>& a,
                    const std::vector<double>& b_full, int np, bool on,
                    int reps) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    repro::ScopedEnable mode(on);
    const double w = run_solve(a, b_full, np, false, 0).wall_us;
    if (i == 0 || w < best) best = w;
  }
  return best;
}

bool counters_identical(const Stats& a, const Stats& b) {
  return a.messages_sent == b.messages_sent &&
         a.messages_received == b.messages_received &&
         a.bytes_sent == b.bytes_sent &&
         a.bytes_received == b.bytes_received && a.flops == b.flops &&
         a.barriers == b.barriers && a.collectives == b.collectives &&
         a.reductions == b.reductions &&
         a.reduction_values == b.reduction_values &&
         a.repro_reductions == b.repro_reductions &&
         a.repro_values == b.repro_values &&
         a.envelopes_inline == b.envelopes_inline &&
         // The pooled/heap split is scheduling-dependent; only the sum is
         // deterministic per workload.
         a.envelopes_pooled + a.envelopes_heap ==
             b.envelopes_pooled + b.envelopes_heap &&
         a.modeled_comm_seconds == b.modeled_comm_seconds &&
         a.modeled_compute_seconds == b.modeled_compute_seconds &&
         a.modeled_wait_seconds == b.modeled_wait_seconds;
}

}  // namespace

int main(int argc, char** argv) {
  hpfcg::util::Cli cli(argc, argv);
  const std::string json_path =
      cli.get("json", "", "write the gate report as JSON to this path");
  const int runs = std::stoi(
      cli.get("runs", "50", "perturbed replays per cell in the RP3 gate"));
  if (cli.help_requested()) {
    std::cout << cli.help_text("bench_repro");
    return 0;
  }
  cli.finish();

  if (!repro::kCompiled) {
    std::cout << "hpfcg::repro compiled out (HPFCG_REPRO=OFF): nothing to "
                 "gate.\n";
    return 0;
  }

  bool ok = true;

  // ---- RP1: NP-invariance of the repro-mode fused solvers ---------------
  const auto lap = sp::laplacian_2d(24, 24);
  const auto lap_rhs = sp::random_rhs(lap.n_rows(), 4242);
  const auto spd = sp::random_spd(48, 5, 91);
  const auto spd_rhs = sp::random_rhs(spd.n_rows(), 37);
  hpfcg::util::Table np_table(
      "RP1 — repro-mode residual histories across machine sizes (fused CG "
      "on lap2d 24x24, Jacobi-PCG on random SPD n=48): every NP must "
      "round to the same bits as NP=1",
      {"solver", "NP", "iters", "signature", "identical"});
  {
    repro::ScopedEnable on;
    const Solve cg_ref = run_solve(lap, lap_rhs, 1, false, 0);
    const Solve pcg_ref = run_solve(spd, spd_rhs, 1, true, 0);
    np_table.add_row({"cg_fused", "1", std::to_string(cg_ref.iterations),
                      std::to_string(cg_ref.signature), "ref"});
    for (const int np : {2, 4, 8}) {
      const Solve s = run_solve(lap, lap_rhs, np, false, 0);
      const bool same =
          s.signature == cg_ref.signature && s.iterations == cg_ref.iterations;
      np_table.add_row({"cg_fused", std::to_string(np),
                        std::to_string(s.iterations),
                        std::to_string(s.signature), same ? "yes" : "NO"});
      if (!same) {
        std::cerr << "RP1: cg_fused NP=" << np << " drifted from NP=1\n";
        ok = false;
      }
    }
    np_table.add_row({"pcg_fused", "1", std::to_string(pcg_ref.iterations),
                      std::to_string(pcg_ref.signature), "ref"});
    for (const int np : {2, 4, 8}) {
      const Solve s = run_solve(spd, spd_rhs, np, true, 0);
      const bool same = s.signature == pcg_ref.signature &&
                        s.iterations == pcg_ref.iterations;
      np_table.add_row({"pcg_fused", std::to_string(np),
                        std::to_string(s.iterations),
                        std::to_string(s.signature), same ? "yes" : "NO"});
      if (!same) {
        std::cerr << "RP1: pcg_fused NP=" << np << " drifted from NP=1\n";
        ok = false;
      }
    }
  }
  np_table.print(std::cout);

  // ---- RP2: rebalance-schedule invariance -------------------------------
  const auto skew = sp::powerlaw_spd(96, 3, 5, 48, 13);
  const auto skew_rhs = sp::random_rhs(skew.n_rows(), 5);
  hpfcg::util::Table rb_table(
      "RP2 — repro-mode pcg_fused under mid-solve REDISTRIBUTE (power-law "
      "n=96, skewed): any cadence on any NP must match the "
      "never-rebalanced NP=4 bits",
      {"NP", "rebalance every", "iters", "signature", "identical"});
  {
    repro::ScopedEnable on;
    const Solve ref = run_solve(skew, skew_rhs, 4, true, 0);
    rb_table.add_row({"4", "never", std::to_string(ref.iterations),
                      std::to_string(ref.signature), "ref"});
    const std::pair<int, std::size_t> cells[] = {
        {4, 3}, {4, 5}, {2, 4}, {8, 4}};
    for (const auto& [np, every] : cells) {
      const Solve s = run_solve(skew, skew_rhs, np, true, every);
      const bool same =
          s.signature == ref.signature && s.iterations == ref.iterations;
      rb_table.add_row({std::to_string(np), std::to_string(every),
                        std::to_string(s.iterations),
                        std::to_string(s.signature), same ? "yes" : "NO"});
      if (!same) {
        std::cerr << "RP2: NP=" << np << " every=" << every
                  << " drifted from the never-rebalanced run\n";
        ok = false;
      }
    }
  }
  rb_table.print(std::cout);

  // ---- RP3: perturbed replay of the hardest schedule --------------------
  struct ReplayRow {
    int np = 0;
    race::ReplayReport report;
  };
  std::vector<ReplayRow> replay_rows;
  bool replay_ok = true;
  if (race::kCompiled && runs > 0) {
    hpfcg::util::Table rt_table(
        "RP3 — " + std::to_string(runs) +
            " perturbed replays per NP of the repro pcg_fused with "
            "rebalancing every 3 iterations: adversarial delivery must "
            "never move a bit",
        {"NP", "identical", "flagged", "unflagged", "verdict"});
    const auto diag = skew.diagonal();
    for (const int np : {2, 4, 8}) {
      ReplayRow row;
      row.np = np;
      row.report = race::perturbed_replay(
          runs, 0x9e70u + static_cast<std::uint64_t>(np),
          [&](std::uint64_t seed) {
            repro::ScopedEnable repro_on;
            race::ScopedEnable on;
            race::ScopedReplaySeed replay(seed);
            Runtime rt(np);
            race::ReplayRun run;
            rt.run([&](Process& p) {
              auto dist = share(Distribution::block(skew.n_rows(),
                                                    p.nprocs()));
              auto mat = sp::DistCsr<double>::row_aligned(p, skew, dist);
              DistributedVector<double> b(p, dist), x(p, dist),
                  inv_diag(p, dist);
              b.from_global(skew_rhs);
              inv_diag.set_from(
                  [&](std::size_t g) { return 1.0 / diag[g]; });
              const sv::DistOp<double> op =
                  [&](const DistributedVector<double>& q,
                      DistributedVector<double>& out) {
                    mat.matvec(q, out);
                  };
              const sv::DistPrec<double> pc =
                  [&inv_diag](const DistributedVector<double>& r,
                              DistributedVector<double>& z) {
                    hpfcg::hpf::hadamard(inv_diag, r, z);
                  };
              const auto hook = sv::make_csr_rebalancer<double>(
                  mat, [&](const hpfcg::hpf::DistPtr& nd) {
                    inv_diag = hpfcg::hpf::redistribute(inv_diag, nd);
                  });
              const auto res = sv::pcg_fused_dist<double>(
                  op, pc, b, x,
                  {.rel_tolerance = 1e-10,
                   .track_residuals = true,
                   .rebalance_every = 3},
                  hook);
              if (p.rank() == 0) run.signature = res.residual_signature();
            });
            run.races = rt.racer()->race_count();
            return run;
          });
      const bool cell_ok =
          row.report.deterministic() && row.report.complete();
      replay_ok = replay_ok && cell_ok;
      rt_table.add_row({std::to_string(np),
                        std::to_string(row.report.identical),
                        std::to_string(row.report.flagged_divergences),
                        std::to_string(row.report.unflagged_divergences),
                        cell_ok ? "bit-identical" : "FAIL"});
      replay_rows.push_back(row);
    }
    std::cout << '\n';
    rt_table.print(std::cout);
    if (!replay_ok) {
      std::cerr << "RP3: a perturbed replay diverged\n";
      ok = false;
    }
  } else {
    std::cout << "\n(RP3 skipped: race layer compiled out or --runs 0)\n";
  }

  // ---- RP4: overhead at NP=8 on a 2-D Laplacian -------------------------
  const auto big = sp::laplacian_2d(64, 64);  // n = 4096
  const auto big_rhs = sp::random_rhs(big.n_rows(), 23);
  const double off_us = best_wall_us(big, big_rhs, 8, false, 5);
  const double on_us = best_wall_us(big, big_rhs, 8, true, 5);
  const double ratio = off_us > 0.0 ? on_us / off_us : 1.0;
  const bool overhead_ok = ratio < 2.0;
  Stats on_stats;
  {
    repro::ScopedEnable on;
    on_stats = run_solve(big, big_rhs, 8, false, 0).total;
  }
  const hpfcg::msg::CostModel cm({}, hpfcg::msg::Topology::kHypercube, 8);
  const double model_us =
      cm.repro_allreduce_time(2, sizeof(repro::Superacc),
                              repro::Superacc::kMergeFlops) *
      1e6;
  std::cout << "\nRP4 — NP=8 cg_fused wall on lap2d 64x64 (best of 5): "
            << "plain " << hpfcg::util::fmt(off_us, 0) << " us, repro "
            << hpfcg::util::fmt(on_us, 0) << " us, ratio "
            << hpfcg::util::fmt(ratio, 3) << " (gate < 2.0: "
            << (overhead_ok ? "pass" : "FAIL") << ")\n"
            << "     superacc: " << repro::Superacc::kLimbs << " limbs, "
            << sizeof(repro::Superacc) << " B on the wire; "
            << on_stats.repro_reductions << " repro reductions carrying "
            << on_stats.repro_values << " values; modeled exact 2-wide "
            << "allreduce " << hpfcg::util::fmt(model_us, 2) << " us\n";
  if (!overhead_ok) {
    std::cerr << "RP4: repro overhead " << ratio << "x exceeds the 2x gate\n";
    ok = false;
  }

  // ---- RP5: the opt-in must cost nothing until enabled ------------------
  bool off_ok = true;
  {
    repro::ScopedEnable off(false);
    const Solve a1 = run_solve(lap, lap_rhs, 8, false, 0);
    const Solve a2 = run_solve(lap, lap_rhs, 8, false, 0);
    off_ok = a1.signature == a2.signature &&
             a1.iterations == a2.iterations &&
             counters_identical(a1.total, a2.total) &&
             a1.total.repro_reductions == 0 && a1.total.repro_values == 0;
  }
  // And an untouched run (no scope at all, default-off env) matches the
  // explicitly-disabled one.
  {
    const Solve plain = run_solve(lap, lap_rhs, 8, false, 0);
    repro::ScopedEnable off(false);
    const Solve scoped = run_solve(lap, lap_rhs, 8, false, 0);
    off_ok = off_ok && plain.signature == scoped.signature &&
             counters_identical(plain.total, scoped.total);
  }
  std::cout << "\nRP5 — mode off: Stats and results bit-identical to an "
               "untouched run, zero repro counters ("
            << (off_ok ? "pass" : "FAIL") << ")\n";
  if (!off_ok) {
    std::cerr << "RP5: the disabled mode perturbed Stats or results\n";
    ok = false;
  }

  std::cout << "\nReading: exact superaccumulator merges make the fused\n"
               "solvers' residual histories a pure function of the problem\n"
               "— the same bits at NP=1 and NP=8, before and after a\n"
               "mid-solve REDISTRIBUTE, under 50 adversarial delivery\n"
               "schedules — for under 2x wall cost on a 4096-row Laplacian,\n"
               "and for free when the mode stays off.\n";

  if (!json_path.empty()) {
    std::ostringstream os;
    os << "{\"overhead_ratio\": " << ratio
       << ", \"overhead_ok\": " << (overhead_ok ? "true" : "false")
       << ", \"off_mode_ok\": " << (off_ok ? "true" : "false")
       << ", \"replay\": [";
    for (std::size_t i = 0; i < replay_rows.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"np\": " << replay_rows[i].np
         << ", \"runs\": " << replay_rows[i].report.perturbed.size()
         << ", \"identical\": " << replay_rows[i].report.identical
         << ", \"flagged\": " << replay_rows[i].report.flagged_divergences
         << ", \"unflagged\": "
         << replay_rows[i].report.unflagged_divergences << "}";
    }
    os << "], \"ok\": " << (ok ? "true" : "false") << "}\n";
    std::ofstream out(json_path);
    out << os.str();
    if (!out) {
      std::cerr << "failed to write " << json_path << "\n";
      ok = false;
    }
    std::cout << "\nwrote " << json_path << "\n";
  }
  return ok ? 0 : 1;
}
