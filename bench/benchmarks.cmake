# Benchmark binaries land in <build>/bench with no CMake clutter, so
# `for b in build/bench/*; do $b; done` runs exactly the harness.
function(hpfcg_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    hpfcg_solvers hpfcg_ext hpfcg_sparse hpfcg_hpf hpfcg_msg hpfcg_util
    benchmark::benchmark Threads::Threads)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

hpfcg_add_bench(bench_vector_ops)
hpfcg_add_bench(bench_collectives)
hpfcg_add_bench(bench_matvec_rowwise)
hpfcg_add_bench(bench_matvec_colwise)
hpfcg_add_bench(bench_private_merge)
hpfcg_add_bench(bench_cg_csr)
hpfcg_add_bench(bench_atom_distribution)
hpfcg_add_bench(bench_load_balance)
hpfcg_add_bench(bench_solver_family)
hpfcg_add_bench(bench_preconditioning)
hpfcg_add_bench(bench_formats)
hpfcg_add_bench(bench_grid2d)
hpfcg_add_bench(bench_gmres)
hpfcg_add_bench(bench_cg_phases)
hpfcg_add_bench(bench_stencil)
hpfcg_add_bench(bench_inspector)
hpfcg_add_bench(bench_check_overhead)
hpfcg_add_bench(bench_comm_avoiding)
hpfcg_add_bench(bench_trace_overhead)
hpfcg_add_bench(bench_model_fit)
hpfcg_add_bench(bench_trace_cg)
hpfcg_add_bench(bench_redistribute)
