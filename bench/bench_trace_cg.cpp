// Experiment TR3: a fully traced distributed CG solve, exported as
// Chrome-trace/Perfetto JSON.
//
// Runs the communication-avoiding fused CG over the 2-D Laplacian on an
// NP=4 machine with tracing enabled and writes every rank's spans (comm,
// intrinsic and solver lanes) plus the per-iteration counter tracks
// (residual, reductions, bytes moved) to a JSON file loadable at
// https://ui.perfetto.dev or chrome://tracing.  CI validates the artifact
// parses as Chrome-trace JSON and uploads it.
//
// Usage: bench_trace_cg [--out trace_np4.json]

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "bench_util.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/trace/chrome_export.hpp"
#include "hpfcg/trace/trace.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
namespace sv = hpfcg::solvers;

int main(int argc, char** argv) {
  std::string out_path = "trace_np4.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
  }

  const int np = 4;
  const std::size_t side = 48;
  const auto a = hpfcg::sparse::laplacian_2d(side, side);
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 404);

  hpfcg::trace::ScopedEnable mode(true);
  sv::SolveResult result;
  hpfcg::msg::Runtime rt(np);
  rt.run([&](Process& proc) {
    auto dist =
        std::make_shared<const Distribution>(Distribution::block(n, np));
    auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
    DistributedVector<double> b(proc, dist), x(proc, dist);
    b.from_global(b_full);
    const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                      DistributedVector<double>& q) {
      mat.matvec(p, q);
    };
    const auto res = sv::cg_fused_dist<double>(
        op, b, x, {.rel_tolerance = 1e-8, .track_residuals = true});
    if (proc.rank() == 0) result = res;
  });

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_trace_cg: cannot open " << out_path << "\n";
    return 1;
  }
  if (rt.tracer() != nullptr) {
    hpfcg::trace::write_chrome_trace(out, *rt.tracer());
  } else {
    // Tracing compiled out: still emit a valid (empty) Chrome trace so the
    // artifact pipeline behaves identically in every build flavor.
    out << "{\"traceEvents\":[]}\n";
  }
  out.close();

  std::cout << "TR3 — fused CG on " << n << " unknowns, NP=" << np << ": "
            << result.iterations << " iterations, relative residual "
            << result.relative_residual << (result.converged ? " (converged)"
                                                             : " (NOT converged)")
            << "\n";
  if (rt.tracer() != nullptr) {
    std::cout << "wrote " << out_path << " with "
              << rt.tracer()->total_recorded() << " spans ("
              << rt.tracer()->total_dropped()
              << " dropped to ring wrap) — load it at ui.perfetto.dev\n";
  } else {
    std::cout << "wrote " << out_path
              << " (empty: tracing compiled out via HPFCG_TRACE=OFF)\n";
  }
  return result.converged ? 0 : 1;
}
