// Experiment A6 (Section 2.1): the CG solver family's communication
// profiles.
//
//   CG        1 matvec (broadcast)            + 2 inner-product merges
//   BiCG      2 matvecs, one with A^T — the transpose product needs the
//             merge pattern, "negating" the row-storage optimisation
//   CGS       2 matvecs, no A^T, extra vectors; can diverge
//   BiCGSTAB  2 matvecs, no A^T, 4 inner products per iteration
//
// Fixed 20 iterations (no early exit) so the per-iteration communication
// is directly comparable; a second table reports iterations-to-tolerance.

#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/solvers/stationary.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
namespace sv = hpfcg::solvers;

namespace {

enum class Method { kCg, kBicg, kBicgstab };

const char* name_of(Method m) {
  switch (m) {
    case Method::kCg:
      return "CG";
    case Method::kBicg:
      return "BiCG (uses A^T)";
    case Method::kBicgstab:
      return "BiCGSTAB (4 dots)";
  }
  return "?";
}

}  // namespace

int main() {
  const auto a = hpfcg::sparse::laplacian_2d(40, 40);
  const std::size_t n = a.n_rows();
  const auto b_full = hpfcg::sparse::random_rhs(n, 606);
  const std::size_t fixed_iters = 20;

  hpfcg::util::Table comm(
      "A6 — per-iteration communication by method (n=" + std::to_string(n) +
          ", " + std::to_string(fixed_iters) + " fixed iterations)",
      {"method", "NP", "bytes/it", "msgs/it", "collectives/it",
       "modeled[ms]/it"});

  for (const int np : {4, 8}) {
    for (const auto m : {Method::kCg, Method::kBicg, Method::kBicgstab}) {
      auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto dist =
            std::make_shared<const Distribution>(Distribution::block(n, np));
        auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
        DistributedVector<double> b(proc, dist), x(proc, dist);
        b.from_global(b_full);
        const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                          DistributedVector<double>& q) {
          mat.matvec(p, q);
        };
        const sv::DistOp<double> op_t =
            [&](const DistributedVector<double>& p,
                DistributedVector<double>& q) { mat.matvec_transpose(p, q); };
        sv::SolveOptions opts{.max_iterations = fixed_iters,
                              .rel_tolerance = 0.0};
        switch (m) {
          case Method::kCg:
            (void)sv::cg_dist<double>(op, b, x, opts);
            break;
          case Method::kBicg:
            (void)sv::bicg_dist<double>(op, op_t, b, x, opts);
            break;
          case Method::kBicgstab:
            (void)sv::bicgstab_dist<double>(op, b, x, opts);
            break;
        }
      });
      const auto total = rt->total_stats();
      const double it = static_cast<double>(fixed_iters);
      comm.add_row(
          {name_of(m), std::to_string(np),
           hpfcg::util::fmt(static_cast<double>(total.bytes_sent) / it, 5),
           hpfcg::util::fmt(static_cast<double>(total.messages_sent) / it, 4),
           hpfcg::util::fmt(static_cast<double>(total.collectives) / it, 4),
           hpfcg::util::fmt(rt->modeled_makespan() * 1e3 / it, 4)});
    }
  }
  comm.print(std::cout);

  // Iterations-to-tolerance (serial references; SPD so all apply).
  hpfcg::util::Table conv("A6 — iterations to 1e-8 on the same system",
                          {"method", "iterations", "converged", "breakdown"});
  const sv::SolveOptions opts{.max_iterations = 2000, .rel_tolerance = 1e-8};
  {
    std::vector<double> x(n, 0.0);
    const auto r = sv::cg(a, b_full, x, opts);
    conv.add_row({"CG", std::to_string(r.iterations),
                  r.converged ? "yes" : "no", r.breakdown ? "yes" : "no"});
  }
  {
    std::vector<double> x(n, 0.0);
    const auto r = sv::bicg(a, b_full, x, opts);
    conv.add_row({"BiCG", std::to_string(r.iterations),
                  r.converged ? "yes" : "no", r.breakdown ? "yes" : "no"});
  }
  {
    std::vector<double> x(n, 0.0);
    const auto r = sv::cgs(a, b_full, x, opts);
    conv.add_row({"CGS", std::to_string(r.iterations),
                  r.converged ? "yes" : "no", r.breakdown ? "yes" : "no"});
  }
  {
    std::vector<double> x(n, 0.0);
    const auto r = sv::bicgstab(a, b_full, x, opts);
    conv.add_row({"BiCGSTAB", std::to_string(r.iterations),
                  r.converged ? "yes" : "no", r.breakdown ? "yes" : "no"});
  }
  // Pre-Krylov stationary baselines — what "preferred over simple
  // Gaussian algorithms because of their faster convergence rate"
  // competes against in the iterative world.
  {
    std::vector<double> x(n, 0.0);
    const sv::SolveOptions sopts{.max_iterations = 100000,
                                 .rel_tolerance = 1e-8};
    const auto r = sv::jacobi_iteration(a, b_full, x, sopts);
    conv.add_row({"Jacobi iteration", std::to_string(r.iterations),
                  r.converged ? "yes" : "no", "no"});
  }
  {
    std::vector<double> x(n, 0.0);
    const sv::SolveOptions sopts{.max_iterations = 100000,
                                 .rel_tolerance = 1e-8};
    const auto r = sv::sor_iteration(a, b_full, x, 1.0, sopts);
    conv.add_row({"Gauss-Seidel", std::to_string(r.iterations),
                  r.converged ? "yes" : "no", "no"});
  }
  {
    std::vector<double> x(n, 0.0);
    const sv::SolveOptions sopts{.max_iterations = 100000,
                                 .rel_tolerance = 1e-8};
    const auto r = sv::sor_iteration(a, b_full, x, 1.7, sopts);
    conv.add_row({"SOR(1.7)", std::to_string(r.iterations),
                  r.converged ? "yes" : "no", "no"});
  }
  conv.print(std::cout);

  std::cout
      << "\nReading: BiCG roughly doubles CG's per-iteration volume (the\n"
         "A^T product adds a full-length merge on top of the broadcast) —\n"
         "Section 2.1's warning that transpose products negate row-storage\n"
         "tuning.  BiCGSTAB avoids A^T but doubles the DOT_PRODUCT merges\n"
         "(4 per iteration), its 'greater demand for an efficient\n"
         "intrinsic'.  On SPD systems BiCG tracks CG's iteration count.\n";
  return 0;
}
