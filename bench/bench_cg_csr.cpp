// Experiment F2 (Figure 2): the full sparse-CSR CG solver.
//
// Per-iteration decomposition of the paper's Figure-2 loop: one sparse
// matvec (broadcast of p + local sweep), two DOT_PRODUCT merges, three
// local SAXPY-class updates.  The table reports, per n and NP:
// iterations to tolerance, flops / bytes / messages per iteration, modeled
// time per iteration, and the modeled compute:communication ratio — the
// quantity the owner-computes rule is meant to maximize.

#include <cmath>
#include <iostream>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "hpfcg/solvers/dist_solvers.hpp"
#include "hpfcg/solvers/serial.hpp"
#include "hpfcg/sparse/dist_csr.hpp"
#include "hpfcg/sparse/generators.hpp"
#include "hpfcg/util/timer.hpp"

using hpfcg::hpf::Distribution;
using hpfcg::hpf::DistributedVector;
using hpfcg::msg::Process;
namespace sv = hpfcg::solvers;

int main() {
  hpfcg::util::Table table(
      "F2 — distributed CG over CSR (2-D Laplacian), per-iteration costs",
      {"n", "NP", "iters", "flops/it/rank", "bytes/it", "msgs/it",
       "modeled[ms]/it", "comp:comm", "wall[ms]"});

  for (const std::size_t side : {std::size_t{32}, std::size_t{64}}) {
    const auto a = hpfcg::sparse::laplacian_2d(side, side);
    const std::size_t n = a.n_rows();
    const auto b_full = hpfcg::sparse::random_rhs(n, 404);

    for (const int np : hpfcg_bench::np_sweep()) {
      sv::SolveResult result;
      hpfcg::util::Timer wall;
      auto rt = hpfcg_bench::run_machine(np, [&](Process& proc) {
        auto dist =
            std::make_shared<const Distribution>(Distribution::block(n, np));
        auto mat = hpfcg::sparse::DistCsr<double>::row_aligned(proc, a, dist);
        DistributedVector<double> b(proc, dist), x(proc, dist);
        b.from_global(b_full);
        const sv::DistOp<double> op = [&](const DistributedVector<double>& p,
                                          DistributedVector<double>& q) {
          mat.matvec(p, q);
        };
        const auto res =
            sv::cg_dist<double>(op, b, x, {.rel_tolerance = 1e-8});
        if (proc.rank() == 0) result = res;
      });
      const double iters = std::max<std::size_t>(result.iterations, 1);
      const auto total = rt->total_stats();
      double max_flops = 0.0;
      double comp = 0.0, comm = 0.0;
      for (int r = 0; r < np; ++r) {
        max_flops =
            std::max(max_flops, static_cast<double>(rt->stats(r).flops));
        comp += rt->stats(r).modeled_compute_seconds;
        comm += rt->stats(r).modeled_comm_seconds;
      }
      table.add_row(
          {std::to_string(n), std::to_string(np),
           std::to_string(result.iterations),
           hpfcg::util::fmt(max_flops / iters, 4),
           hpfcg::util::fmt(static_cast<double>(total.bytes_sent) / iters, 4),
           hpfcg::util::fmt(static_cast<double>(total.messages_sent) / iters,
                            4),
           hpfcg::util::fmt(rt->modeled_makespan() * 1e3 / iters, 4),
           comm > 0.0 ? hpfcg::util::fmt(comp / comm, 3) : "inf",
           hpfcg::util::fmt(wall.millis(), 4)});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: per-iteration flops per rank fall as 1/NP while bytes\n"
         "per iteration stay ~n*8 (the p-broadcast) and messages grow\n"
         "gently with NP — so the compute:communication ratio degrades as\n"
         "NP grows at fixed n and recovers with larger n, the scaling the\n"
         "paper's Section 4 analysis predicts for Figure 2's CG.\n";
  return 0;
}
