# CMake generated Testfile for 
# Source directory: /root/repo/tests/msg
# Build directory: /root/repo/build/tests/msg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/msg/msg_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/msg/msg_point_to_point_test[1]_include.cmake")
include("/root/repo/build/tests/msg/msg_cost_model_test[1]_include.cmake")
include("/root/repo/build/tests/msg/msg_robustness_test[1]_include.cmake")
include("/root/repo/build/tests/msg/msg_fuzz_collectives_test[1]_include.cmake")
include("/root/repo/build/tests/msg/msg_phase_profile_test[1]_include.cmake")
