file(REMOVE_RECURSE
  "CMakeFiles/msg_robustness_test.dir/robustness_test.cpp.o"
  "CMakeFiles/msg_robustness_test.dir/robustness_test.cpp.o.d"
  "msg_robustness_test"
  "msg_robustness_test.pdb"
  "msg_robustness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
