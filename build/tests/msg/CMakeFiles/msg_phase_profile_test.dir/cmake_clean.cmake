file(REMOVE_RECURSE
  "CMakeFiles/msg_phase_profile_test.dir/phase_profile_test.cpp.o"
  "CMakeFiles/msg_phase_profile_test.dir/phase_profile_test.cpp.o.d"
  "msg_phase_profile_test"
  "msg_phase_profile_test.pdb"
  "msg_phase_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_phase_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
