# Empty dependencies file for msg_phase_profile_test.
# This may be replaced when dependencies are built.
