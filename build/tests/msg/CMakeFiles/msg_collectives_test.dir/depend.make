# Empty dependencies file for msg_collectives_test.
# This may be replaced when dependencies are built.
