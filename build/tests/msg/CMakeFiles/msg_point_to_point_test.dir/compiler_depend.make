# Empty compiler generated dependencies file for msg_point_to_point_test.
# This may be replaced when dependencies are built.
