# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for msg_point_to_point_test.
