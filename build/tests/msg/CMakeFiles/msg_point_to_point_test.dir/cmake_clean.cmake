file(REMOVE_RECURSE
  "CMakeFiles/msg_point_to_point_test.dir/point_to_point_test.cpp.o"
  "CMakeFiles/msg_point_to_point_test.dir/point_to_point_test.cpp.o.d"
  "msg_point_to_point_test"
  "msg_point_to_point_test.pdb"
  "msg_point_to_point_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_point_to_point_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
