file(REMOVE_RECURSE
  "CMakeFiles/msg_cost_model_test.dir/cost_model_test.cpp.o"
  "CMakeFiles/msg_cost_model_test.dir/cost_model_test.cpp.o.d"
  "msg_cost_model_test"
  "msg_cost_model_test.pdb"
  "msg_cost_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_cost_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
