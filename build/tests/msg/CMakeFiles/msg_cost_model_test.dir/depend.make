# Empty dependencies file for msg_cost_model_test.
# This may be replaced when dependencies are built.
