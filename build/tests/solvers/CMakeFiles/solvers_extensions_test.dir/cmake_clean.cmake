file(REMOVE_RECURSE
  "CMakeFiles/solvers_extensions_test.dir/extensions_test.cpp.o"
  "CMakeFiles/solvers_extensions_test.dir/extensions_test.cpp.o.d"
  "solvers_extensions_test"
  "solvers_extensions_test.pdb"
  "solvers_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
