file(REMOVE_RECURSE
  "CMakeFiles/solvers_convergence_theory_test.dir/convergence_theory_test.cpp.o"
  "CMakeFiles/solvers_convergence_theory_test.dir/convergence_theory_test.cpp.o.d"
  "solvers_convergence_theory_test"
  "solvers_convergence_theory_test.pdb"
  "solvers_convergence_theory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers_convergence_theory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
