# Empty compiler generated dependencies file for solvers_convergence_theory_test.
# This may be replaced when dependencies are built.
