file(REMOVE_RECURSE
  "CMakeFiles/solvers_gmres_test.dir/gmres_test.cpp.o"
  "CMakeFiles/solvers_gmres_test.dir/gmres_test.cpp.o.d"
  "solvers_gmres_test"
  "solvers_gmres_test.pdb"
  "solvers_gmres_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers_gmres_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
