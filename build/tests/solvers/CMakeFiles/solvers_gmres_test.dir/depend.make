# Empty dependencies file for solvers_gmres_test.
# This may be replaced when dependencies are built.
