file(REMOVE_RECURSE
  "CMakeFiles/solvers_dist_test.dir/dist_solvers_test.cpp.o"
  "CMakeFiles/solvers_dist_test.dir/dist_solvers_test.cpp.o.d"
  "solvers_dist_test"
  "solvers_dist_test.pdb"
  "solvers_dist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers_dist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
