# Empty dependencies file for solvers_dist_test.
# This may be replaced when dependencies are built.
