file(REMOVE_RECURSE
  "CMakeFiles/solvers_stationary_test.dir/stationary_test.cpp.o"
  "CMakeFiles/solvers_stationary_test.dir/stationary_test.cpp.o.d"
  "solvers_stationary_test"
  "solvers_stationary_test.pdb"
  "solvers_stationary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers_stationary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
