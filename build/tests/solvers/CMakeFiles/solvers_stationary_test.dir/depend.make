# Empty dependencies file for solvers_stationary_test.
# This may be replaced when dependencies are built.
