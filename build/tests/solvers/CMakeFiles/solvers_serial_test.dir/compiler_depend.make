# Empty compiler generated dependencies file for solvers_serial_test.
# This may be replaced when dependencies are built.
