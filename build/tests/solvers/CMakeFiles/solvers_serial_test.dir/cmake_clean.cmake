file(REMOVE_RECURSE
  "CMakeFiles/solvers_serial_test.dir/serial_solvers_test.cpp.o"
  "CMakeFiles/solvers_serial_test.dir/serial_solvers_test.cpp.o.d"
  "solvers_serial_test"
  "solvers_serial_test.pdb"
  "solvers_serial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers_serial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
