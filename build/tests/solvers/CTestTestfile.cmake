# CMake generated Testfile for 
# Source directory: /root/repo/tests/solvers
# Build directory: /root/repo/build/tests/solvers
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/solvers/solvers_serial_test[1]_include.cmake")
include("/root/repo/build/tests/solvers/solvers_convergence_theory_test[1]_include.cmake")
include("/root/repo/build/tests/solvers/solvers_dist_test[1]_include.cmake")
include("/root/repo/build/tests/solvers/solvers_gmres_test[1]_include.cmake")
include("/root/repo/build/tests/solvers/solvers_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/solvers/solvers_property_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/solvers/solvers_stationary_test[1]_include.cmake")
