file(REMOVE_RECURSE
  "CMakeFiles/integration_cost_model_validation_test.dir/cost_model_validation_test.cpp.o"
  "CMakeFiles/integration_cost_model_validation_test.dir/cost_model_validation_test.cpp.o.d"
  "integration_cost_model_validation_test"
  "integration_cost_model_validation_test.pdb"
  "integration_cost_model_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_cost_model_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
