# Empty compiler generated dependencies file for integration_figure2_test.
# This may be replaced when dependencies are built.
