file(REMOVE_RECURSE
  "CMakeFiles/integration_figure2_test.dir/figure2_test.cpp.o"
  "CMakeFiles/integration_figure2_test.dir/figure2_test.cpp.o.d"
  "integration_figure2_test"
  "integration_figure2_test.pdb"
  "integration_figure2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_figure2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
