# Empty dependencies file for integration_fixed_tag_stress_test.
# This may be replaced when dependencies are built.
