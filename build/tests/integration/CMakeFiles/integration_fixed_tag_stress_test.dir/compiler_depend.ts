# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for integration_fixed_tag_stress_test.
