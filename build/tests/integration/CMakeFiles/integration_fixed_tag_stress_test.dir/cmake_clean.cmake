file(REMOVE_RECURSE
  "CMakeFiles/integration_fixed_tag_stress_test.dir/fixed_tag_stress_test.cpp.o"
  "CMakeFiles/integration_fixed_tag_stress_test.dir/fixed_tag_stress_test.cpp.o.d"
  "integration_fixed_tag_stress_test"
  "integration_fixed_tag_stress_test.pdb"
  "integration_fixed_tag_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fixed_tag_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
