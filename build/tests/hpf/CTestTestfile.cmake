# CMake generated Testfile for 
# Source directory: /root/repo/tests/hpf
# Build directory: /root/repo/build/tests/hpf
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/hpf/hpf_distribution_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_dist_vector_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_intrinsics_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_matvec_dense_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_redistribute_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_forall_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_grid2d_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_directives_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_intrinsics_extra_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_shift_test[1]_include.cmake")
include("/root/repo/build/tests/hpf/hpf_align_test[1]_include.cmake")
