# Empty compiler generated dependencies file for hpf_shift_test.
# This may be replaced when dependencies are built.
