file(REMOVE_RECURSE
  "CMakeFiles/hpf_shift_test.dir/shift_test.cpp.o"
  "CMakeFiles/hpf_shift_test.dir/shift_test.cpp.o.d"
  "hpf_shift_test"
  "hpf_shift_test.pdb"
  "hpf_shift_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_shift_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
