file(REMOVE_RECURSE
  "CMakeFiles/hpf_forall_test.dir/forall_test.cpp.o"
  "CMakeFiles/hpf_forall_test.dir/forall_test.cpp.o.d"
  "hpf_forall_test"
  "hpf_forall_test.pdb"
  "hpf_forall_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_forall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
