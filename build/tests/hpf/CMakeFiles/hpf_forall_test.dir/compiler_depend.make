# Empty compiler generated dependencies file for hpf_forall_test.
# This may be replaced when dependencies are built.
