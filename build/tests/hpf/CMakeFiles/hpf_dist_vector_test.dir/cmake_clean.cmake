file(REMOVE_RECURSE
  "CMakeFiles/hpf_dist_vector_test.dir/dist_vector_test.cpp.o"
  "CMakeFiles/hpf_dist_vector_test.dir/dist_vector_test.cpp.o.d"
  "hpf_dist_vector_test"
  "hpf_dist_vector_test.pdb"
  "hpf_dist_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_dist_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
