# Empty compiler generated dependencies file for hpf_dist_vector_test.
# This may be replaced when dependencies are built.
