file(REMOVE_RECURSE
  "CMakeFiles/hpf_distribution_test.dir/distribution_test.cpp.o"
  "CMakeFiles/hpf_distribution_test.dir/distribution_test.cpp.o.d"
  "hpf_distribution_test"
  "hpf_distribution_test.pdb"
  "hpf_distribution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_distribution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
