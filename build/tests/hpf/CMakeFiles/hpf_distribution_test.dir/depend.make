# Empty dependencies file for hpf_distribution_test.
# This may be replaced when dependencies are built.
