# Empty dependencies file for hpf_matvec_dense_test.
# This may be replaced when dependencies are built.
