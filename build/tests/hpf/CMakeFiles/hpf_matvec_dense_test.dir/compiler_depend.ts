# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hpf_matvec_dense_test.
