file(REMOVE_RECURSE
  "CMakeFiles/hpf_matvec_dense_test.dir/matvec_dense_test.cpp.o"
  "CMakeFiles/hpf_matvec_dense_test.dir/matvec_dense_test.cpp.o.d"
  "hpf_matvec_dense_test"
  "hpf_matvec_dense_test.pdb"
  "hpf_matvec_dense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_matvec_dense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
