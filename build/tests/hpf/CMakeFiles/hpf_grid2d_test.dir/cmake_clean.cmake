file(REMOVE_RECURSE
  "CMakeFiles/hpf_grid2d_test.dir/grid2d_test.cpp.o"
  "CMakeFiles/hpf_grid2d_test.dir/grid2d_test.cpp.o.d"
  "hpf_grid2d_test"
  "hpf_grid2d_test.pdb"
  "hpf_grid2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_grid2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
