# Empty dependencies file for hpf_grid2d_test.
# This may be replaced when dependencies are built.
