# Empty dependencies file for hpf_intrinsics_test.
# This may be replaced when dependencies are built.
