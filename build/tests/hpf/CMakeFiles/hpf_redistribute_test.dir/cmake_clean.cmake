file(REMOVE_RECURSE
  "CMakeFiles/hpf_redistribute_test.dir/redistribute_test.cpp.o"
  "CMakeFiles/hpf_redistribute_test.dir/redistribute_test.cpp.o.d"
  "hpf_redistribute_test"
  "hpf_redistribute_test.pdb"
  "hpf_redistribute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_redistribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
