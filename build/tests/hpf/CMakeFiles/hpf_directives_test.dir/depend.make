# Empty dependencies file for hpf_directives_test.
# This may be replaced when dependencies are built.
