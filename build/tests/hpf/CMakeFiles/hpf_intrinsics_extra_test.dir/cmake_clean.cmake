file(REMOVE_RECURSE
  "CMakeFiles/hpf_intrinsics_extra_test.dir/intrinsics_extra_test.cpp.o"
  "CMakeFiles/hpf_intrinsics_extra_test.dir/intrinsics_extra_test.cpp.o.d"
  "hpf_intrinsics_extra_test"
  "hpf_intrinsics_extra_test.pdb"
  "hpf_intrinsics_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_intrinsics_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
