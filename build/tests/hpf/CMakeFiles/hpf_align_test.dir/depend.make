# Empty dependencies file for hpf_align_test.
# This may be replaced when dependencies are built.
