file(REMOVE_RECURSE
  "CMakeFiles/hpf_align_test.dir/align_test.cpp.o"
  "CMakeFiles/hpf_align_test.dir/align_test.cpp.o.d"
  "hpf_align_test"
  "hpf_align_test.pdb"
  "hpf_align_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_align_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
