file(REMOVE_RECURSE
  "CMakeFiles/ext_sparse_descriptor_test.dir/sparse_descriptor_test.cpp.o"
  "CMakeFiles/ext_sparse_descriptor_test.dir/sparse_descriptor_test.cpp.o.d"
  "ext_sparse_descriptor_test"
  "ext_sparse_descriptor_test.pdb"
  "ext_sparse_descriptor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_sparse_descriptor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
