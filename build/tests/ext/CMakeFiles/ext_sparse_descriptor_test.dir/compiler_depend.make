# Empty compiler generated dependencies file for ext_sparse_descriptor_test.
# This may be replaced when dependencies are built.
