file(REMOVE_RECURSE
  "CMakeFiles/ext_on_processor_test.dir/on_processor_test.cpp.o"
  "CMakeFiles/ext_on_processor_test.dir/on_processor_test.cpp.o.d"
  "ext_on_processor_test"
  "ext_on_processor_test.pdb"
  "ext_on_processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_on_processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
