# Empty compiler generated dependencies file for ext_on_processor_test.
# This may be replaced when dependencies are built.
