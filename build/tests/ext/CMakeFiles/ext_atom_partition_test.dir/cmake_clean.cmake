file(REMOVE_RECURSE
  "CMakeFiles/ext_atom_partition_test.dir/atom_partition_test.cpp.o"
  "CMakeFiles/ext_atom_partition_test.dir/atom_partition_test.cpp.o.d"
  "ext_atom_partition_test"
  "ext_atom_partition_test.pdb"
  "ext_atom_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_atom_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
