# Empty dependencies file for ext_atom_partition_test.
# This may be replaced when dependencies are built.
