file(REMOVE_RECURSE
  "CMakeFiles/ext_balanced_partition_test.dir/balanced_partition_test.cpp.o"
  "CMakeFiles/ext_balanced_partition_test.dir/balanced_partition_test.cpp.o.d"
  "ext_balanced_partition_test"
  "ext_balanced_partition_test.pdb"
  "ext_balanced_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_balanced_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
