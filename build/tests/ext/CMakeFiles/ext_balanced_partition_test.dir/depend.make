# Empty dependencies file for ext_balanced_partition_test.
# This may be replaced when dependencies are built.
