# Empty dependencies file for ext_inspector_test.
# This may be replaced when dependencies are built.
