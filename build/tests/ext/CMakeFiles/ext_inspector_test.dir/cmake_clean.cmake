file(REMOVE_RECURSE
  "CMakeFiles/ext_inspector_test.dir/inspector_test.cpp.o"
  "CMakeFiles/ext_inspector_test.dir/inspector_test.cpp.o.d"
  "ext_inspector_test"
  "ext_inspector_test.pdb"
  "ext_inspector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_inspector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
