# Empty dependencies file for ext_private_array_test.
# This may be replaced when dependencies are built.
