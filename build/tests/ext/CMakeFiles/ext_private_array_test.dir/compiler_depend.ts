# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ext_private_array_test.
