file(REMOVE_RECURSE
  "CMakeFiles/ext_private_array_test.dir/private_array_test.cpp.o"
  "CMakeFiles/ext_private_array_test.dir/private_array_test.cpp.o.d"
  "ext_private_array_test"
  "ext_private_array_test.pdb"
  "ext_private_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_private_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
