# CMake generated Testfile for 
# Source directory: /root/repo/tests/ext
# Build directory: /root/repo/build/tests/ext
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ext/ext_private_array_test[1]_include.cmake")
include("/root/repo/build/tests/ext/ext_on_processor_test[1]_include.cmake")
include("/root/repo/build/tests/ext/ext_atom_partition_test[1]_include.cmake")
include("/root/repo/build/tests/ext/ext_balanced_partition_test[1]_include.cmake")
include("/root/repo/build/tests/ext/ext_sparse_descriptor_test[1]_include.cmake")
include("/root/repo/build/tests/ext/ext_inspector_test[1]_include.cmake")
