file(REMOVE_RECURSE
  "CMakeFiles/sparse_csr_api_test.dir/csr_api_test.cpp.o"
  "CMakeFiles/sparse_csr_api_test.dir/csr_api_test.cpp.o.d"
  "sparse_csr_api_test"
  "sparse_csr_api_test.pdb"
  "sparse_csr_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_csr_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
