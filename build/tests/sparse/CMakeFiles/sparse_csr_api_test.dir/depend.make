# Empty dependencies file for sparse_csr_api_test.
# This may be replaced when dependencies are built.
