file(REMOVE_RECURSE
  "CMakeFiles/sparse_dist_csr_grid2d_test.dir/dist_csr_grid2d_test.cpp.o"
  "CMakeFiles/sparse_dist_csr_grid2d_test.dir/dist_csr_grid2d_test.cpp.o.d"
  "sparse_dist_csr_grid2d_test"
  "sparse_dist_csr_grid2d_test.pdb"
  "sparse_dist_csr_grid2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_dist_csr_grid2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
