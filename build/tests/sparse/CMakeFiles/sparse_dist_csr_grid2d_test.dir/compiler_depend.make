# Empty compiler generated dependencies file for sparse_dist_csr_grid2d_test.
# This may be replaced when dependencies are built.
