# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sparse_dist_csr_grid2d_test.
