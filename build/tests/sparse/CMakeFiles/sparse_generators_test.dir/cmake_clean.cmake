file(REMOVE_RECURSE
  "CMakeFiles/sparse_generators_test.dir/generators_test.cpp.o"
  "CMakeFiles/sparse_generators_test.dir/generators_test.cpp.o.d"
  "sparse_generators_test"
  "sparse_generators_test.pdb"
  "sparse_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
