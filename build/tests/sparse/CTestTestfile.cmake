# CMake generated Testfile for 
# Source directory: /root/repo/tests/sparse
# Build directory: /root/repo/build/tests/sparse
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sparse/sparse_formats_test[1]_include.cmake")
include("/root/repo/build/tests/sparse/sparse_generators_test[1]_include.cmake")
include("/root/repo/build/tests/sparse/sparse_matrix_market_test[1]_include.cmake")
include("/root/repo/build/tests/sparse/sparse_dist_sparse_test[1]_include.cmake")
include("/root/repo/build/tests/sparse/sparse_dist_csr_grid2d_test[1]_include.cmake")
include("/root/repo/build/tests/sparse/sparse_csr_api_test[1]_include.cmake")
