# Empty dependencies file for bench_cg_csr.
# This may be replaced when dependencies are built.
