file(REMOVE_RECURSE
  "CMakeFiles/bench_cg_csr.dir/bench/bench_cg_csr.cpp.o"
  "CMakeFiles/bench_cg_csr.dir/bench/bench_cg_csr.cpp.o.d"
  "bench/bench_cg_csr"
  "bench/bench_cg_csr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cg_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
