file(REMOVE_RECURSE
  "CMakeFiles/bench_formats.dir/bench/bench_formats.cpp.o"
  "CMakeFiles/bench_formats.dir/bench/bench_formats.cpp.o.d"
  "bench/bench_formats"
  "bench/bench_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
