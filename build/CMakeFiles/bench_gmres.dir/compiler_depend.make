# Empty compiler generated dependencies file for bench_gmres.
# This may be replaced when dependencies are built.
