file(REMOVE_RECURSE
  "CMakeFiles/bench_gmres.dir/bench/bench_gmres.cpp.o"
  "CMakeFiles/bench_gmres.dir/bench/bench_gmres.cpp.o.d"
  "bench/bench_gmres"
  "bench/bench_gmres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gmres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
