# Empty compiler generated dependencies file for bench_matvec_rowwise.
# This may be replaced when dependencies are built.
