file(REMOVE_RECURSE
  "CMakeFiles/bench_matvec_rowwise.dir/bench/bench_matvec_rowwise.cpp.o"
  "CMakeFiles/bench_matvec_rowwise.dir/bench/bench_matvec_rowwise.cpp.o.d"
  "bench/bench_matvec_rowwise"
  "bench/bench_matvec_rowwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matvec_rowwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
