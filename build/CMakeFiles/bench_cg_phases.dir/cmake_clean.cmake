file(REMOVE_RECURSE
  "CMakeFiles/bench_cg_phases.dir/bench/bench_cg_phases.cpp.o"
  "CMakeFiles/bench_cg_phases.dir/bench/bench_cg_phases.cpp.o.d"
  "bench/bench_cg_phases"
  "bench/bench_cg_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cg_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
