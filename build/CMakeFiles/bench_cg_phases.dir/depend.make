# Empty dependencies file for bench_cg_phases.
# This may be replaced when dependencies are built.
