file(REMOVE_RECURSE
  "CMakeFiles/bench_matvec_colwise.dir/bench/bench_matvec_colwise.cpp.o"
  "CMakeFiles/bench_matvec_colwise.dir/bench/bench_matvec_colwise.cpp.o.d"
  "bench/bench_matvec_colwise"
  "bench/bench_matvec_colwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matvec_colwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
