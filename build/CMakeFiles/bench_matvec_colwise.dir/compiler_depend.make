# Empty compiler generated dependencies file for bench_matvec_colwise.
# This may be replaced when dependencies are built.
