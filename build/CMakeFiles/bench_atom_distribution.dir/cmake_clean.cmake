file(REMOVE_RECURSE
  "CMakeFiles/bench_atom_distribution.dir/bench/bench_atom_distribution.cpp.o"
  "CMakeFiles/bench_atom_distribution.dir/bench/bench_atom_distribution.cpp.o.d"
  "bench/bench_atom_distribution"
  "bench/bench_atom_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atom_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
