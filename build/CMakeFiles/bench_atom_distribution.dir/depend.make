# Empty dependencies file for bench_atom_distribution.
# This may be replaced when dependencies are built.
