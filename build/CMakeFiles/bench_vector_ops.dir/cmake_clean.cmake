file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_ops.dir/bench/bench_vector_ops.cpp.o"
  "CMakeFiles/bench_vector_ops.dir/bench/bench_vector_ops.cpp.o.d"
  "bench/bench_vector_ops"
  "bench/bench_vector_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
