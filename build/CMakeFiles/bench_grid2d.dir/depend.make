# Empty dependencies file for bench_grid2d.
# This may be replaced when dependencies are built.
