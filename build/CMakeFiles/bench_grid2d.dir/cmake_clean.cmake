file(REMOVE_RECURSE
  "CMakeFiles/bench_grid2d.dir/bench/bench_grid2d.cpp.o"
  "CMakeFiles/bench_grid2d.dir/bench/bench_grid2d.cpp.o.d"
  "bench/bench_grid2d"
  "bench/bench_grid2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grid2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
