file(REMOVE_RECURSE
  "CMakeFiles/bench_solver_family.dir/bench/bench_solver_family.cpp.o"
  "CMakeFiles/bench_solver_family.dir/bench/bench_solver_family.cpp.o.d"
  "bench/bench_solver_family"
  "bench/bench_solver_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_solver_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
