# Empty compiler generated dependencies file for bench_solver_family.
# This may be replaced when dependencies are built.
