file(REMOVE_RECURSE
  "CMakeFiles/bench_inspector.dir/bench/bench_inspector.cpp.o"
  "CMakeFiles/bench_inspector.dir/bench/bench_inspector.cpp.o.d"
  "bench/bench_inspector"
  "bench/bench_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
