# Empty dependencies file for bench_inspector.
# This may be replaced when dependencies are built.
