# Empty dependencies file for bench_preconditioning.
# This may be replaced when dependencies are built.
