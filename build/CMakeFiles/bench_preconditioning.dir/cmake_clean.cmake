file(REMOVE_RECURSE
  "CMakeFiles/bench_preconditioning.dir/bench/bench_preconditioning.cpp.o"
  "CMakeFiles/bench_preconditioning.dir/bench/bench_preconditioning.cpp.o.d"
  "bench/bench_preconditioning"
  "bench/bench_preconditioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_preconditioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
