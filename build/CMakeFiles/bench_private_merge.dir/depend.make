# Empty dependencies file for bench_private_merge.
# This may be replaced when dependencies are built.
