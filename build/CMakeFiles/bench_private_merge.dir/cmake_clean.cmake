file(REMOVE_RECURSE
  "CMakeFiles/bench_private_merge.dir/bench/bench_private_merge.cpp.o"
  "CMakeFiles/bench_private_merge.dir/bench/bench_private_merge.cpp.o.d"
  "bench/bench_private_merge"
  "bench/bench_private_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_private_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
