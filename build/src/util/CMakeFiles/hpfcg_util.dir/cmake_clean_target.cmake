file(REMOVE_RECURSE
  "libhpfcg_util.a"
)
