file(REMOVE_RECURSE
  "CMakeFiles/hpfcg_util.dir/src/cli.cpp.o"
  "CMakeFiles/hpfcg_util.dir/src/cli.cpp.o.d"
  "CMakeFiles/hpfcg_util.dir/src/str.cpp.o"
  "CMakeFiles/hpfcg_util.dir/src/str.cpp.o.d"
  "CMakeFiles/hpfcg_util.dir/src/table.cpp.o"
  "CMakeFiles/hpfcg_util.dir/src/table.cpp.o.d"
  "libhpfcg_util.a"
  "libhpfcg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfcg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
