# Empty compiler generated dependencies file for hpfcg_util.
# This may be replaced when dependencies are built.
