
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hpf/src/directives.cpp" "src/hpf/CMakeFiles/hpfcg_hpf.dir/src/directives.cpp.o" "gcc" "src/hpf/CMakeFiles/hpfcg_hpf.dir/src/directives.cpp.o.d"
  "/root/repo/src/hpf/src/distribution.cpp" "src/hpf/CMakeFiles/hpfcg_hpf.dir/src/distribution.cpp.o" "gcc" "src/hpf/CMakeFiles/hpfcg_hpf.dir/src/distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msg/CMakeFiles/hpfcg_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpfcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
