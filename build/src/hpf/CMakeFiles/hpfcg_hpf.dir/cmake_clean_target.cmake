file(REMOVE_RECURSE
  "libhpfcg_hpf.a"
)
