# Empty dependencies file for hpfcg_hpf.
# This may be replaced when dependencies are built.
