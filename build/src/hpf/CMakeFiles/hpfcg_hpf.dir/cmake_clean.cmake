file(REMOVE_RECURSE
  "CMakeFiles/hpfcg_hpf.dir/src/directives.cpp.o"
  "CMakeFiles/hpfcg_hpf.dir/src/directives.cpp.o.d"
  "CMakeFiles/hpfcg_hpf.dir/src/distribution.cpp.o"
  "CMakeFiles/hpfcg_hpf.dir/src/distribution.cpp.o.d"
  "libhpfcg_hpf.a"
  "libhpfcg_hpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfcg_hpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
