file(REMOVE_RECURSE
  "libhpfcg_ext.a"
)
