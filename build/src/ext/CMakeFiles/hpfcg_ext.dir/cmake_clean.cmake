file(REMOVE_RECURSE
  "CMakeFiles/hpfcg_ext.dir/src/balanced_partition.cpp.o"
  "CMakeFiles/hpfcg_ext.dir/src/balanced_partition.cpp.o.d"
  "libhpfcg_ext.a"
  "libhpfcg_ext.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfcg_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
