# Empty dependencies file for hpfcg_ext.
# This may be replaced when dependencies are built.
