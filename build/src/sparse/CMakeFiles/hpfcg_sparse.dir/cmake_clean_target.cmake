file(REMOVE_RECURSE
  "libhpfcg_sparse.a"
)
