# Empty dependencies file for hpfcg_sparse.
# This may be replaced when dependencies are built.
