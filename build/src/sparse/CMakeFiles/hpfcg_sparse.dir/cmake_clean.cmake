file(REMOVE_RECURSE
  "CMakeFiles/hpfcg_sparse.dir/src/generators.cpp.o"
  "CMakeFiles/hpfcg_sparse.dir/src/generators.cpp.o.d"
  "CMakeFiles/hpfcg_sparse.dir/src/matrix_market.cpp.o"
  "CMakeFiles/hpfcg_sparse.dir/src/matrix_market.cpp.o.d"
  "libhpfcg_sparse.a"
  "libhpfcg_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfcg_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
