file(REMOVE_RECURSE
  "CMakeFiles/hpfcg_solvers.dir/src/dense_direct.cpp.o"
  "CMakeFiles/hpfcg_solvers.dir/src/dense_direct.cpp.o.d"
  "CMakeFiles/hpfcg_solvers.dir/src/gmres.cpp.o"
  "CMakeFiles/hpfcg_solvers.dir/src/gmres.cpp.o.d"
  "CMakeFiles/hpfcg_solvers.dir/src/preconditioner.cpp.o"
  "CMakeFiles/hpfcg_solvers.dir/src/preconditioner.cpp.o.d"
  "CMakeFiles/hpfcg_solvers.dir/src/serial.cpp.o"
  "CMakeFiles/hpfcg_solvers.dir/src/serial.cpp.o.d"
  "CMakeFiles/hpfcg_solvers.dir/src/stationary.cpp.o"
  "CMakeFiles/hpfcg_solvers.dir/src/stationary.cpp.o.d"
  "libhpfcg_solvers.a"
  "libhpfcg_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfcg_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
