# Empty compiler generated dependencies file for hpfcg_solvers.
# This may be replaced when dependencies are built.
