
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solvers/src/dense_direct.cpp" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/dense_direct.cpp.o" "gcc" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/dense_direct.cpp.o.d"
  "/root/repo/src/solvers/src/gmres.cpp" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/gmres.cpp.o" "gcc" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/gmres.cpp.o.d"
  "/root/repo/src/solvers/src/preconditioner.cpp" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/preconditioner.cpp.o" "gcc" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/preconditioner.cpp.o.d"
  "/root/repo/src/solvers/src/serial.cpp" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/serial.cpp.o" "gcc" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/serial.cpp.o.d"
  "/root/repo/src/solvers/src/stationary.cpp" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/stationary.cpp.o" "gcc" "src/solvers/CMakeFiles/hpfcg_solvers.dir/src/stationary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sparse/CMakeFiles/hpfcg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/hpf/CMakeFiles/hpfcg_hpf.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hpfcg_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpfcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
