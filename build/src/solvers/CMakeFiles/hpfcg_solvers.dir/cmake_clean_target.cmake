file(REMOVE_RECURSE
  "libhpfcg_solvers.a"
)
