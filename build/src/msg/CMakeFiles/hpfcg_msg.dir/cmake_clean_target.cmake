file(REMOVE_RECURSE
  "libhpfcg_msg.a"
)
