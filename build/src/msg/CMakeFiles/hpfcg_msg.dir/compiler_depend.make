# Empty compiler generated dependencies file for hpfcg_msg.
# This may be replaced when dependencies are built.
