file(REMOVE_RECURSE
  "CMakeFiles/hpfcg_msg.dir/src/cost_model.cpp.o"
  "CMakeFiles/hpfcg_msg.dir/src/cost_model.cpp.o.d"
  "CMakeFiles/hpfcg_msg.dir/src/mailbox.cpp.o"
  "CMakeFiles/hpfcg_msg.dir/src/mailbox.cpp.o.d"
  "CMakeFiles/hpfcg_msg.dir/src/runtime.cpp.o"
  "CMakeFiles/hpfcg_msg.dir/src/runtime.cpp.o.d"
  "libhpfcg_msg.a"
  "libhpfcg_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpfcg_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
