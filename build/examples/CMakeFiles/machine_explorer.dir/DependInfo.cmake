
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/machine_explorer.cpp" "examples/CMakeFiles/machine_explorer.dir/machine_explorer.cpp.o" "gcc" "examples/CMakeFiles/machine_explorer.dir/machine_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/solvers/CMakeFiles/hpfcg_solvers.dir/DependInfo.cmake"
  "/root/repo/build/src/ext/CMakeFiles/hpfcg_ext.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/hpfcg_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/hpf/CMakeFiles/hpfcg_hpf.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/hpfcg_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpfcg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
