# Empty compiler generated dependencies file for hpf_figure2.
# This may be replaced when dependencies are built.
