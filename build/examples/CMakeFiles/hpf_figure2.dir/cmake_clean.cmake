file(REMOVE_RECURSE
  "CMakeFiles/hpf_figure2.dir/hpf_figure2.cpp.o"
  "CMakeFiles/hpf_figure2.dir/hpf_figure2.cpp.o.d"
  "hpf_figure2"
  "hpf_figure2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpf_figure2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
