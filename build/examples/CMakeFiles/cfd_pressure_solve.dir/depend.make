# Empty dependencies file for cfd_pressure_solve.
# This may be replaced when dependencies are built.
