file(REMOVE_RECURSE
  "CMakeFiles/cfd_pressure_solve.dir/cfd_pressure_solve.cpp.o"
  "CMakeFiles/cfd_pressure_solve.dir/cfd_pressure_solve.cpp.o.d"
  "cfd_pressure_solve"
  "cfd_pressure_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfd_pressure_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
