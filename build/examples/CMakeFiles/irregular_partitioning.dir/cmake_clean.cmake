file(REMOVE_RECURSE
  "CMakeFiles/irregular_partitioning.dir/irregular_partitioning.cpp.o"
  "CMakeFiles/irregular_partitioning.dir/irregular_partitioning.cpp.o.d"
  "irregular_partitioning"
  "irregular_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
