# Empty dependencies file for irregular_partitioning.
# This may be replaced when dependencies are built.
