file(REMOVE_RECURSE
  "CMakeFiles/heat_implicit.dir/heat_implicit.cpp.o"
  "CMakeFiles/heat_implicit.dir/heat_implicit.cpp.o.d"
  "heat_implicit"
  "heat_implicit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_implicit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
