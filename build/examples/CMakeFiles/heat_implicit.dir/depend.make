# Empty dependencies file for heat_implicit.
# This may be replaced when dependencies are built.
