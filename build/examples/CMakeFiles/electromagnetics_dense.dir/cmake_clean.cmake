file(REMOVE_RECURSE
  "CMakeFiles/electromagnetics_dense.dir/electromagnetics_dense.cpp.o"
  "CMakeFiles/electromagnetics_dense.dir/electromagnetics_dense.cpp.o.d"
  "electromagnetics_dense"
  "electromagnetics_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electromagnetics_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
