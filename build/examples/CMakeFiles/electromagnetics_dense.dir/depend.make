# Empty dependencies file for electromagnetics_dense.
# This may be replaced when dependencies are built.
